//! The controller facade: compile → place → install, remove, update.
//!
//! All operations are pure table-rule manipulation on live switches;
//! packet forwarding continues throughout (the §6.1 property — contrast
//! with the Sonata reboot model in `newton-baselines`).

use crate::placement::{reachable_depth, topology_fingerprint, Placement, PlacementTemplate};
use crate::timing::RuleTimingModel;
use newton_compiler::{CacheStats, CompileCache, CompilerConfig, QueryPlan};
use newton_dataplane::{QueryId, RuleSet, SetId, SliceInfo, SwitchError};
use newton_net::{Network, Topology};
use newton_query::Query;
use std::collections::HashMap;
use std::fmt;

/// Outcome of one query operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstallReceipt {
    pub id: QueryId,
    /// Wall-clock the rule channel took (max over switches — installs are
    /// issued in parallel), from the timing model.
    pub delay_ms: f64,
    /// Total rules touched network-wide.
    pub rules: usize,
    /// Switches touched.
    pub switches: usize,
    /// CQE slices the query was cut into.
    pub slices: usize,
    /// Slices beyond the network's reachable depth: they can never execute
    /// on the data plane, so the query's remainder defers to the software
    /// analyzer (§5.2).
    pub overflow_slices: usize,
    /// Whether the diff-install path served this operation (only ever set
    /// by [`Controller::update`]; plain installs/removals are full-path
    /// by definition).
    pub diff: bool,
}

/// One installed query's bookkeeping. Keeps the compiled artifacts so the
/// controller can re-place slices after a switch failure (or restore the
/// old query when an update's install fails) without recompiling.
#[derive(Debug, Clone)]
pub struct InstalledQuery {
    /// The analyzer plan (probe addresses are slice-relative).
    pub plan: QueryPlan,
    pub placement: Placement,
    /// The original intent — drives the software-interpreter fallback when
    /// a failure degrades the query below data-plane coverage.
    pub query: Query,
    /// Compiled per-slice rule sets, unshifted (stage 0 based).
    pub slices: Vec<RuleSet>,
    /// Pipeline stages each slice occupies.
    pub stage_counts: Vec<usize>,
    /// Snapshot capture set of each slice boundary.
    pub captures: Vec<SetId>,
}

/// Outcome of one [`Controller::repair`] pass over the live topology.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RepairOutcome {
    /// Installed queries examined.
    pub examined: usize,
    /// Queries that had missing slices re-placed this pass.
    pub repaired: Vec<QueryId>,
    /// Queries the live data plane cannot fully execute right now
    /// (placement no longer fits, or the healthy subgraph is too shallow /
    /// partitioned) — they must run on the software analyzer until a later
    /// pass clears them.
    pub degraded: Vec<QueryId>,
    /// Rules pushed network-wide by this pass.
    pub rules_installed: usize,
    /// Switches that received rules.
    pub switches_touched: usize,
    /// Modelled rule-channel wall clock (max over switches — installs are
    /// issued in parallel).
    pub delay_ms: f64,
}

/// A failed [`Controller::install`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InstallError {
    /// Every register slot is occupied by a live query: a further install
    /// would have to share another query's register ranges, violating the
    /// §4.1 flexible-allocation invariant (disjoint `1/slots` slices of
    /// every physical array). Remove a query first, or provision the
    /// controller with more slots ([`Controller::with_slots`]).
    SlotsExhausted {
        /// The controller's slot capacity (all in use).
        slots: u32,
    },
    /// A switch rejected the compiled rules (capacity, layout mismatch);
    /// the partial install was rolled back network-wide.
    Switch(SwitchError),
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::SlotsExhausted { slots } => {
                write!(f, "all {slots} register slots are in use by live queries")
            }
            InstallError::Switch(e) => write!(f, "switch rejected rules: {e}"),
        }
    }
}

impl std::error::Error for InstallError {}

impl From<SwitchError> for InstallError {
    fn from(e: SwitchError) -> Self {
        InstallError::Switch(e)
    }
}

/// A failed [`Controller::update`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdateError {
    /// The id was never installed (or has already been removed): there is
    /// nothing to update in place. Callers wanting install-or-update
    /// semantics must call [`Controller::install`] explicitly — silently
    /// minting a fresh install here used to hide dangling-id bugs (and,
    /// worse, assumed register slot 0, aliasing whichever query held it).
    UnknownQuery(QueryId),
    /// The switch error that sank the new definition, plus the modelled
    /// rule-channel delay spent re-installing the prior query (the restore
    /// is real traffic — hiding it would make failed updates look free).
    Rejected {
        error: SwitchError,
        /// Rule-channel wall clock of putting the old query back (0 when
        /// the restore itself failed and the query was scrubbed instead).
        restore_delay_ms: f64,
    },
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::UnknownQuery(id) => write!(f, "query {id} is not installed"),
            UpdateError::Rejected { error, restore_delay_ms } => {
                write!(f, "update failed ({error:?}); restore took {restore_delay_ms:.3} ms")
            }
        }
    }
}

impl std::error::Error for UpdateError {}

/// A failed [`Controller::retune_threshold`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetuneError {
    /// The id was never installed (or has already been removed).
    UnknownQuery(QueryId),
    /// Report thresholds live in 32-bit match ranges on the data plane;
    /// a wider value used to be truncated silently (`as u32`), retuning
    /// the query to `threshold mod 2^32` — almost always *looser* than
    /// asked. Rejected instead.
    ThresholdOutOfRange {
        requested: u64,
        /// The widest representable threshold (`u32::MAX`).
        max: u32,
    },
}

impl fmt::Display for RetuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetuneError::UnknownQuery(id) => write!(f, "query {id} is not installed"),
            RetuneError::ThresholdOutOfRange { requested, max } => {
                write!(f, "threshold {requested} exceeds the data plane's 32-bit range (max {max})")
            }
        }
    }
}

impl std::error::Error for RetuneError {}

/// Cumulative rule-channel accounting: what the controller shipped to
/// switches since construction (or the last reset), in the same modelled
/// units the epoch driver charges for repair traffic (64-byte control
/// messages). Installs and in-place modifications carry a full rule body;
/// removals carry only an address; each per-switch batch pays one header.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    pub rules_installed: u64,
    pub rules_removed: u64,
    pub rules_modified: u64,
    /// Per-switch batches issued.
    pub messages: u64,
    /// Modelled bytes over the rule channel.
    pub bytes: u64,
}

impl ChannelStats {
    const INSTALL_BYTES: u64 = 64;
    const REMOVE_BYTES: u64 = 16;
    const MODIFY_BYTES: u64 = 64;
    const HEADER_BYTES: u64 = 24;

    fn install(&mut self, rules: usize) {
        if rules == 0 {
            return;
        }
        self.rules_installed += rules as u64;
        self.messages += 1;
        self.bytes += Self::HEADER_BYTES + rules as u64 * Self::INSTALL_BYTES;
    }

    fn remove(&mut self, rules: usize) {
        if rules == 0 {
            return;
        }
        self.rules_removed += rules as u64;
        self.messages += 1;
        self.bytes += Self::HEADER_BYTES + rules as u64 * Self::REMOVE_BYTES;
    }

    fn modify(&mut self, rules: usize) {
        if rules == 0 {
            return;
        }
        self.rules_modified += rules as u64;
        self.messages += 1;
        self.bytes += Self::HEADER_BYTES + rules as u64 * Self::MODIFY_BYTES;
    }
}

/// The centralized Newton controller.
#[derive(Debug)]
pub struct Controller {
    compiler_cfg: CompilerConfig,
    timing: RuleTimingModel,
    next_id: QueryId,
    installed: HashMap<QueryId, InstalledQuery>,
    /// Concurrent-query slots: each installed query gets a disjoint
    /// `1/slots` slice of every physical register array (§4.1's flexible
    /// register allocation), so independent queries never collide in 𝕊.
    register_slots: u32,
    /// Slot index each live query occupies.
    slots_in_use: HashMap<QueryId, u32>,
    /// Incremental compilation: Algorithm-1 composition and Opt.1–3 rule
    /// generation reused across generations of the same intent shape.
    cache: CompileCache,
    /// Amortized Algorithm 2: one placement DFS per topology fingerprint,
    /// trimmed per query instead of re-derived per install/repair.
    templates: HashMap<u64, PlacementTemplate>,
    channel: ChannelStats,
    /// When set (the default), [`Self::update`] diffs old vs new slices
    /// per switch and pushes only the changed ones; when cleared, every
    /// update takes the full remove+reinstall path (the from-scratch
    /// baseline the churn bench and equivalence proptests compare
    /// against — both paths keep the query's id and register slot).
    diff_install: bool,
}

impl Controller {
    pub fn new(compiler_cfg: CompilerConfig, timing_seed: u64) -> Self {
        Self::with_slots(compiler_cfg, timing_seed, 4)
    }

    /// A controller provisioned for up to `register_slots` concurrent
    /// queries sharing the register arrays.
    pub fn with_slots(compiler_cfg: CompilerConfig, timing_seed: u64, register_slots: u32) -> Self {
        assert!(register_slots >= 1);
        Controller {
            compiler_cfg,
            timing: RuleTimingModel::new(timing_seed),
            next_id: 1,
            installed: HashMap::new(),
            register_slots,
            slots_in_use: HashMap::new(),
            cache: CompileCache::new(),
            templates: HashMap::new(),
            channel: ChannelStats::default(),
            diff_install: true,
        }
    }

    /// The compiler config for a query occupying register `slot`.
    fn slot_config(&self, slot: u32) -> CompilerConfig {
        let slice = (self.compiler_cfg.registers_per_array / self.register_slots).max(1);
        CompilerConfig {
            registers_per_array: slice,
            register_offset: slot * slice,
            ..self.compiler_cfg
        }
    }

    /// The register slice (range, offset) for a new query.
    ///
    /// Errors when every slot is occupied: falling back to slot 0 (the old
    /// behavior) silently aliased the new query's register ranges onto
    /// whichever live query held that slot — two queries reading and
    /// resetting each other's 𝕊 state.
    fn allocate_slot(&mut self, id: QueryId) -> Result<CompilerConfig, InstallError> {
        let used: std::collections::HashSet<u32> = self.slots_in_use.values().copied().collect();
        let Some(slot) = (0..self.register_slots).find(|s| !used.contains(s)) else {
            return Err(InstallError::SlotsExhausted { slots: self.register_slots });
        };
        self.slots_in_use.insert(id, slot);
        Ok(self.slot_config(slot))
    }

    /// The controller's concurrent-query slot capacity.
    pub fn register_slots(&self) -> u32 {
        self.register_slots
    }

    /// The register slot a live query occupies (`None` if not installed).
    pub fn register_slot(&self, id: QueryId) -> Option<u32> {
        self.slots_in_use.get(&id).copied()
    }

    /// The register-array offset a live query's compiled rules address —
    /// `slot × (registers_per_array / slots)`. Live queries always hold
    /// pairwise disjoint `[offset, offset + slice)` ranges.
    pub fn register_offset(&self, id: QueryId) -> Option<u32> {
        let slot = self.register_slot(id)?;
        Some(self.slot_config(slot).register_offset)
    }

    pub fn compiler_config(&self) -> &CompilerConfig {
        &self.compiler_cfg
    }

    /// Cumulative rule-channel traffic (see [`ChannelStats`]).
    pub fn channel_stats(&self) -> ChannelStats {
        self.channel
    }

    /// Zero the rule-channel counters (steady-state measurements).
    pub fn reset_channel_stats(&mut self) {
        self.channel = ChannelStats::default();
    }

    /// Compilation-cache hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Toggle diff-based updates (on by default). Off forces every
    /// [`Self::update`] through the full remove+reinstall path — the
    /// from-scratch baseline; ids and register slots are preserved either
    /// way, so the two paths are observably equivalent except for
    /// rule-channel traffic and modelled latency.
    pub fn set_diff_install(&mut self, on: bool) {
        self.diff_install = on;
    }

    /// The installed queries.
    pub fn installed(&self) -> &HashMap<QueryId, InstalledQuery> {
        &self.installed
    }

    /// Compile and deploy a query network-wide with resilient placement
    /// (Algorithm 2), slicing for CQE when it exceeds one switch's stages.
    ///
    /// Transactional across the network: if any switch rejects its rules
    /// (capacity, layout mismatch), every switch already touched is rolled
    /// back and the register slot is freed — the network is exactly as it
    /// was before the call. With every register slot occupied the call
    /// fails up front ([`InstallError::SlotsExhausted`]) without minting an
    /// id or touching a switch.
    pub fn install(
        &mut self,
        query: &Query,
        net: &mut Network,
        stages_per_switch: usize,
    ) -> Result<InstallReceipt, InstallError> {
        let id = self.next_id;
        let query_cfg = self.allocate_slot(id)?;
        self.next_id += 1;
        match self.try_install(query, id, &query_cfg, net, stages_per_switch) {
            Ok(receipt) => Ok(receipt),
            Err(e) => {
                // Roll back every switch the partial install touched.
                Self::scrub(&mut self.channel, net, id);
                self.slots_in_use.remove(&id);
                Err(InstallError::Switch(e))
            }
        }
    }

    /// Compile `query` for `id` via the compilation cache and cut it for
    /// the stage budget: whole query per switch if it fits, otherwise
    /// snapshot-aware CQE slices (chunked in spec order with restored 𝕂s).
    /// Returns `(rulesets, stage_counts, captures, plan)` — per-slice and
    /// unshifted (stage 0 based).
    fn compile_parts(
        &mut self,
        query: &Query,
        id: QueryId,
        query_cfg: &CompilerConfig,
        stages_per_switch: usize,
    ) -> (Vec<RuleSet>, Vec<usize>, Vec<SetId>, QueryPlan) {
        let compilation = self.cache.compile(query, id, query_cfg);
        if compilation.composition.stages() <= stages_per_switch {
            let stages = compilation.composition.stages();
            (vec![compilation.rules], vec![stages], vec![SetId::Set1], compilation.plan)
        } else {
            let sliced = self.cache.compile_sliced(query, id, query_cfg, stages_per_switch);
            (sliced.slices, sliced.slice_stage_counts, sliced.capture_sets, sliced.plan)
        }
    }

    /// Algorithm 2 via the per-topology template cache: one DFS per
    /// distinct topology (fingerprinted by structure), trimmed to this
    /// query's slice count — exactly `place_parts` at a fraction of the
    /// cost under churn and repeated repair passes.
    fn template_place(
        templates: &mut HashMap<u64, PlacementTemplate>,
        topo: &Topology,
        parts: Vec<usize>,
    ) -> Placement {
        let fp = topology_fingerprint(topo);
        let needed = parts.len().max(1);
        let stale = templates.get(&fp).is_none_or(|t| t.max_depth() < needed);
        if stale {
            if templates.len() >= 16 {
                templates.clear(); // bound memory under topology churn
            }
            templates
                .insert(fp, PlacementTemplate::build(topo, topo.edge_switches(), needed.max(8)));
        }
        templates[&fp].place(parts)
    }

    /// Remove every rule of `id` network-wide (rollback/restore scrub),
    /// recording the rule-channel traffic. Returns rules removed.
    fn scrub(channel: &mut ChannelStats, net: &mut Network, id: QueryId) -> usize {
        let mut total = 0;
        for sw in 0..net.switch_count() {
            let removed = net.switch_mut(sw).remove_query(id);
            channel.remove(removed);
            total += removed;
        }
        total
    }

    fn try_install(
        &mut self,
        query: &Query,
        id: QueryId,
        query_cfg: &CompilerConfig,
        net: &mut Network,
        stages_per_switch: usize,
    ) -> Result<InstallReceipt, SwitchError> {
        let (rulesets, stage_counts, captures, plan) =
            self.compile_parts(query, id, query_cfg, stages_per_switch);

        let topo = net.topology().clone();
        let parts: Vec<usize> = rulesets.iter().map(|r| r.total_rule_count()).collect();
        let placement = Self::template_place(&mut self.templates, &topo, parts);

        let (total_rules, switches, max_delay) = Self::apply_placement(
            &mut self.timing,
            &mut self.channel,
            net,
            id,
            &placement,
            &rulesets,
            &stage_counts,
            &captures,
        )?;

        let depth = reachable_depth(&topo, topo.edge_switches());
        self.installed.insert(
            id,
            InstalledQuery {
                plan,
                placement: placement.clone(),
                query: query.clone(),
                slices: rulesets,
                stage_counts,
                captures,
            },
        );
        Ok(InstallReceipt {
            id,
            delay_ms: max_delay,
            rules: total_rules,
            switches,
            slices: placement.slice_count,
            overflow_slices: placement.slice_count.saturating_sub(depth),
            diff: false,
        })
    }

    /// Push a full placement's rules to the network: every switch named by
    /// `placement` receives its slices at stacked stage offsets. Dead
    /// switches are skipped — a crashed box cannot accept config; the
    /// repair pass covers it when it returns. Returns `(rules, switches,
    /// delay_ms)`.
    ///
    /// An associated fn taking split borrows (timing/channel/net alongside
    /// `&self.installed` entries at call sites), so the artifact slices
    /// stay separate parameters.
    #[allow(clippy::too_many_arguments)]
    fn apply_placement(
        timing: &mut RuleTimingModel,
        channel: &mut ChannelStats,
        net: &mut Network,
        id: QueryId,
        placement: &Placement,
        rulesets: &[RuleSet],
        stage_counts: &[usize],
        captures: &[SetId],
    ) -> Result<(usize, usize, f64), SwitchError> {
        let mut total_rules = 0usize;
        let mut switches = 0usize;
        let mut max_delay: f64 = 0.0;
        for (sw_id, slices) in placement.slices.iter().enumerate() {
            if slices.is_empty() || !net.router().switch_up(sw_id) {
                continue;
            }
            switches += 1;
            let mut sw_rules = 0usize;
            // A switch holding several slices stacks them at disjoint
            // stage offsets within its pipeline.
            let mut offset = 0usize;
            for &c in slices {
                let len = stage_counts[c];
                let slice = rulesets[c].shift_stages(offset);
                sw_rules += slice.total_rule_count();
                net.switch_mut(sw_id).install(&slice)?;
                net.switch_mut(sw_id).add_slice(
                    id,
                    SliceInfo {
                        index: c as u8,
                        total: placement.slice_count as u8,
                        capture_set: captures[c],
                        restore_set: if c == 0 { captures[0] } else { captures[c - 1] },
                        stages: (offset, offset + len),
                    },
                )?;
                offset += len;
            }
            total_rules += sw_rules;
            channel.install(sw_rules);
            max_delay = max_delay.max(timing.install_ms(sw_rules));
        }
        Ok((total_rules, switches, max_delay))
    }

    /// Remove an installed query everywhere.
    pub fn remove(&mut self, id: QueryId, net: &mut Network) -> Option<InstallReceipt> {
        let entry = self.installed.remove(&id)?;
        self.slots_in_use.remove(&id);
        let mut total = 0usize;
        let mut switches = 0usize;
        let mut max_delay: f64 = 0.0;
        for sw_id in 0..net.switch_count() {
            let removed = net.switch_mut(sw_id).remove_query(id);
            if removed > 0 {
                switches += 1;
                total += removed;
                self.channel.remove(removed);
                max_delay = max_delay.max(self.timing.remove_ms(removed));
            }
        }
        Some(InstallReceipt {
            id,
            delay_ms: max_delay,
            rules: total,
            switches,
            slices: entry.placement.slice_count,
            overflow_slices: 0,
            diff: false,
        })
    }

    /// Retune a live query's report threshold **in place**: the reporting
    /// ℝ rules' match ranges are rewritten on every switch holding them —
    /// a handful of rule modifications, an order of magnitude cheaper than
    /// remove + reinstall, and the query's accumulated epoch state
    /// survives. Returns the total rules modified and the modelled delay.
    ///
    /// The crossing-window width is preserved (the difference `hi - lo` of
    /// each reporting rule), so count vs byte-sum semantics carry over.
    ///
    /// Thresholds are 32-bit match bounds on the data plane; values above
    /// `u32::MAX` are rejected ([`RetuneError::ThresholdOutOfRange`])
    /// instead of silently truncated — the old `as u32` cast retuned to
    /// `threshold mod 2^32`, usually far *looser* than requested.
    pub fn retune_threshold(
        &mut self,
        id: QueryId,
        new_threshold: u64,
        net: &mut Network,
    ) -> Result<InstallReceipt, RetuneError> {
        if !self.installed.contains_key(&id) {
            return Err(RetuneError::UnknownQuery(id));
        }
        if new_threshold > u64::from(u32::MAX) {
            return Err(RetuneError::ThresholdOutOfRange {
                requested: new_threshold,
                max: u32::MAX,
            });
        }
        let mut rewrite = |rule: &mut newton_dataplane::RRule| {
            use newton_dataplane::{RAction, RMatch};
            if !rule.actions.contains(&RAction::Report) {
                return;
            }
            // The reporting match lives on whichever side is bounded;
            // its window width (crossing semantics) is preserved.
            let on_global = rule.global_match != RMatch::ANY;
            let old = if on_global { rule.global_match } else { rule.state_match };
            let lo = new_threshold as u32;
            let hi = lo.saturating_add(old.hi.saturating_sub(old.lo));
            let new = RMatch { lo, hi };
            if on_global {
                rule.global_match = new;
            } else {
                rule.state_match = new;
            }
        };
        let mut total = 0usize;
        let mut switches = 0usize;
        let mut max_delay: f64 = 0.0;
        for sw_id in 0..net.switch_count() {
            let touched = net.switch_mut(sw_id).update_r_rules(id, &mut rewrite);
            if touched > 0 {
                total += touched;
                switches += 1;
                self.channel.modify(touched);
                max_delay = max_delay.max(self.timing.install_ms(touched));
            }
        }
        // Keep the stored artifacts in sync: repair re-installs from them
        // (a rebooted holder must come back with the *retuned* rules, not
        // the install-time threshold) and the diff-install path compares
        // against them.
        let entry = self.installed.get_mut(&id).expect("checked above");
        for rs in &mut entry.slices {
            for (_, r) in &mut rs.r {
                rewrite(r);
            }
        }
        Ok(InstallReceipt {
            id,
            delay_ms: max_delay,
            rules: total,
            switches,
            slices: entry.placement.slice_count,
            overflow_slices: 0,
            diff: false,
        })
    }

    /// Update a live query **in place**: the query keeps its [`QueryId`]
    /// and register slot, so journal spans, analyzer attribution, and
    /// `installed()` keys stay continuous across updates. Forwarding is
    /// untouched; only the query's rules change.
    ///
    /// When the new definition places with the same shape (same slice
    /// count, same per-switch slice assignment — the overwhelmingly common
    /// drill-down/retune case), the update is a *diff install*: old and
    /// new slices are compared per switch and only changed ones cross the
    /// rule channel (one remove batch + one install batch per touched
    /// switch). When the shape changes — or diffing is disabled via
    /// [`Self::set_diff_install`] — the whole query is removed and
    /// re-installed under the same id and slot.
    ///
    /// Atomic in outcome: if the new rules are rejected anywhere, the old
    /// query is re-installed from its stored artifacts and
    /// [`UpdateError::Rejected`]'s `restore_delay_ms` reports what that
    /// restore cost over the rule channel — the caller observes either the
    /// new query running or the old one restored, never neither.
    ///
    /// Updating an id that is not installed (never was, or already
    /// removed) is [`UpdateError::UnknownQuery`]: the old fall-back to a
    /// plain install assumed register slot 0 for the slot lookup, silently
    /// aliasing whichever live query held it.
    pub fn update(
        &mut self,
        old: QueryId,
        query: &Query,
        net: &mut Network,
        stages_per_switch: usize,
    ) -> Result<InstallReceipt, UpdateError> {
        let Some(prior) = self.installed.get(&old).cloned() else {
            return Err(UpdateError::UnknownQuery(old));
        };
        // `installed` and `slots_in_use` are updated in lock-step, so a
        // live entry always has a slot; treat a missing one as unknown
        // rather than assuming slot 0.
        let Some(slot) = self.slots_in_use.get(&old).copied() else {
            return Err(UpdateError::UnknownQuery(old));
        };
        let query_cfg = self.slot_config(slot);
        let (rulesets, stage_counts, captures, plan) =
            self.compile_parts(query, old, &query_cfg, stages_per_switch);

        let topo = net.topology().clone();
        let parts: Vec<usize> = rulesets.iter().map(|r| r.total_rule_count()).collect();
        let placement = Self::template_place(&mut self.templates, &topo, parts);
        let depth = reachable_depth(&topo, topo.edge_switches());
        let overflow_slices = placement.slice_count.saturating_sub(depth);

        let same_shape = self.diff_install
            && placement.slice_count == prior.placement.slice_count
            && placement.slices == prior.placement.slices;

        let result = if same_shape {
            self.diff_update(old, &prior, net, &placement, &rulesets, &stage_counts, &captures)
        } else {
            self.full_update(old, net, &placement, &rulesets, &stage_counts, &captures)
        };

        match result {
            Ok((rules, switches, delay_ms)) => {
                self.installed.insert(
                    old,
                    InstalledQuery {
                        plan,
                        placement: placement.clone(),
                        query: query.clone(),
                        slices: rulesets,
                        stage_counts,
                        captures,
                    },
                );
                Ok(InstallReceipt {
                    id: old,
                    delay_ms,
                    rules,
                    switches,
                    slices: placement.slice_count,
                    overflow_slices,
                    diff: same_shape,
                })
            }
            Err(error) => {
                // Put the old query back from its stored artifacts: the new
                // rules were scrubbed, so the capacity it occupied is free
                // again. Surface what the restore cost — it is real
                // rule-channel traffic.
                let restored = Self::apply_placement(
                    &mut self.timing,
                    &mut self.channel,
                    net,
                    old,
                    &prior.placement,
                    &prior.slices,
                    &prior.stage_counts,
                    &prior.captures,
                );
                match restored {
                    Ok((_, _, restore_delay_ms)) => {
                        self.installed.insert(old, prior);
                        Err(UpdateError::Rejected { error, restore_delay_ms })
                    }
                    Err(_) => {
                        // Should be unreachable (the old rules fit before);
                        // leave the network clean rather than half-restored.
                        Self::scrub(&mut self.channel, net, old);
                        self.installed.remove(&old);
                        self.slots_in_use.remove(&old);
                        Err(UpdateError::Rejected { error, restore_delay_ms: 0.0 })
                    }
                }
            }
        }
    }

    /// The diff-install path of [`Self::update`]: same placement shape, so
    /// walk each holder switch, compare old vs new artifacts slice by
    /// slice, and replace only what changed. Returns `(rules_touched,
    /// switches_touched, delay_ms)`; on error the query has been scrubbed
    /// network-wide (the caller restores the prior artifacts).
    #[allow(clippy::too_many_arguments)]
    fn diff_update(
        &mut self,
        id: QueryId,
        prior: &InstalledQuery,
        net: &mut Network,
        placement: &Placement,
        rulesets: &[RuleSet],
        stage_counts: &[usize],
        captures: &[SetId],
    ) -> Result<(usize, usize, f64), SwitchError> {
        let mut total_rules = 0usize;
        let mut switches = 0usize;
        let mut max_delay: f64 = 0.0;
        for (sw_id, slices) in placement.slices.iter().enumerate() {
            if slices.is_empty() || !net.router().switch_up(sw_id) {
                continue; // dead holders are the repair pass's job
            }
            // Stack offsets exactly as apply_placement would, in both the
            // old and the new layout, and collect the slices whose
            // installed image must change.
            let mut old_off = 0usize;
            let mut new_off = 0usize;
            let mut changed: Vec<(usize, SliceInfo)> = Vec::new();
            for &c in slices {
                let old_len = prior.stage_counts[c];
                let new_len = stage_counts[c];
                let info = SliceInfo {
                    index: c as u8,
                    total: placement.slice_count as u8,
                    capture_set: captures[c],
                    restore_set: if c == 0 { captures[0] } else { captures[c - 1] },
                    stages: (new_off, new_off + new_len),
                };
                let artifacts_same = old_off == new_off
                    && old_len == new_len
                    && prior.captures[c] == captures[c]
                    && (c == 0 || prior.captures[c - 1] == captures[c - 1])
                    && prior.slices[c] == rulesets[c];
                // A restored-blank holder (pre-repair) simply doesn't hold
                // the slice yet — install it even if the artifacts agree,
                // exactly as the from-scratch path would.
                let held = net.switch(sw_id).assigned_slices(id).contains(&info);
                if !(artifacts_same && held) {
                    changed.push((c, info));
                }
                old_off += old_len;
                new_off += new_len;
            }
            if changed.is_empty() {
                continue;
            }
            // Two passes: clear every changed slice first, then install —
            // a growing slice may overlap a shrinking neighbor's old
            // stage range, so removals must all land before installs.
            let mut removed = 0usize;
            for &(c, _) in &changed {
                removed += net.switch_mut(sw_id).remove_slice(id, c as u8);
            }
            let mut installed = 0usize;
            for &(c, info) in &changed {
                let slice = rulesets[c].shift_stages(info.stages.0);
                installed += slice.total_rule_count();
                let pushed = net
                    .switch_mut(sw_id)
                    .install(&slice)
                    .and_then(|()| net.switch_mut(sw_id).add_slice(id, info));
                if let Err(e) = pushed {
                    // Whole-or-absent: scrub the query everywhere and let
                    // the caller restore the prior artifacts.
                    Self::scrub(&mut self.channel, net, id);
                    return Err(e);
                }
            }
            let mut sw_delay = 0.0;
            if removed > 0 {
                self.channel.remove(removed);
                sw_delay += self.timing.remove_ms(removed);
            }
            if installed > 0 {
                self.channel.install(installed);
                sw_delay += self.timing.install_ms(installed);
            }
            total_rules += removed + installed;
            switches += 1;
            max_delay = max_delay.max(sw_delay);
        }
        Ok((total_rules, switches, max_delay))
    }

    /// The from-scratch path of [`Self::update`]: remove the old query
    /// everywhere and re-apply the new placement under the **same** id and
    /// slot. Returns `(rules_touched, switches_touched, delay_ms)`; on
    /// error the query has been scrubbed network-wide.
    fn full_update(
        &mut self,
        id: QueryId,
        net: &mut Network,
        placement: &Placement,
        rulesets: &[RuleSet],
        stage_counts: &[usize],
        captures: &[SetId],
    ) -> Result<(usize, usize, f64), SwitchError> {
        let mut removed_total = 0usize;
        let mut remove_delay: f64 = 0.0;
        for sw_id in 0..net.switch_count() {
            let removed = net.switch_mut(sw_id).remove_query(id);
            if removed > 0 {
                removed_total += removed;
                self.channel.remove(removed);
                remove_delay = remove_delay.max(self.timing.remove_ms(removed));
            }
        }
        match Self::apply_placement(
            &mut self.timing,
            &mut self.channel,
            net,
            id,
            placement,
            rulesets,
            stage_counts,
            captures,
        ) {
            Ok((rules, switches, install_delay)) => {
                Ok((removed_total + rules, switches, remove_delay + install_delay))
            }
            Err(e) => {
                Self::scrub(&mut self.channel, net, id);
                Err(e)
            }
        }
    }

    /// One repair pass after topology churn: re-run Algorithm 2 over the
    /// *healthy* subgraph and push every slice the live placement wants
    /// that its switch no longer holds — the missing slices of queries
    /// whose holders crashed and rebooted blank. Queries the live data
    /// plane cannot fully execute (the healthy subgraph is too shallow,
    /// partitioned from all edges, or a switch rejects its rules) are
    /// listed as degraded for the driver to mirror into the software
    /// analyzer.
    ///
    /// Deterministic: queries are visited in id order, switches in id
    /// order, so the rule-channel timing model draws identically on every
    /// run.
    pub fn repair(&mut self, net: &mut Network) -> RepairOutcome {
        let mut out = RepairOutcome::default();
        if self.installed.is_empty() {
            return out;
        }
        let full = net.topology().clone();
        let full_depth = reachable_depth(&full, full.edge_switches());
        let live = net.live_topology();
        let live_edges: Vec<usize> = live.edge_switches().to_vec();
        let live_depth = reachable_depth(&live, &live_edges);
        let mut ids: Vec<QueryId> = self.installed.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let entry = &self.installed[&id];
            out.examined += 1;
            // Slices beyond the full topology's depth never ran on the
            // data plane (install-time overflow, §5.2); only the runnable
            // prefix gauges failure-induced degradation.
            let runnable = entry.placement.slice_count.min(full_depth);
            let mut degraded = live_edges.is_empty() || live_depth < runnable;
            let parts: Vec<usize> = entry.slices.iter().map(RuleSet::total_rule_count).collect();
            let want = Self::template_place(&mut self.templates, &live, parts);
            let mut query_rules = 0usize;
            for (sw_id, slices) in want.slices.iter().enumerate() {
                if slices.is_empty() {
                    continue;
                }
                let have = net.switch(sw_id).assigned_slices(id);
                let missing: Vec<usize> = slices
                    .iter()
                    .copied()
                    .filter(|&c| !have.iter().any(|i| i.index as usize == c))
                    .collect();
                if missing.is_empty() {
                    continue;
                }
                let mut offset = have.iter().map(|i| i.stages.1).max().unwrap_or(0);
                let mut sw_rules = 0usize;
                let mut failed = false;
                for c in missing {
                    let len = entry.stage_counts[c];
                    let slice = entry.slices[c].shift_stages(offset);
                    sw_rules += slice.total_rule_count();
                    let pushed = net.switch_mut(sw_id).install(&slice).and_then(|()| {
                        net.switch_mut(sw_id).add_slice(
                            id,
                            SliceInfo {
                                index: c as u8,
                                total: entry.placement.slice_count as u8,
                                capture_set: entry.captures[c],
                                restore_set: if c == 0 {
                                    entry.captures[0]
                                } else {
                                    entry.captures[c - 1]
                                },
                                stages: (offset, offset + len),
                            },
                        )
                    });
                    if pushed.is_err() {
                        failed = true;
                        break;
                    }
                    offset += len;
                }
                if failed {
                    // The switch can't take the query back consistently
                    // (capacity reclaimed by others, slice-cursor clash);
                    // drop whatever of the query it held so it is either
                    // whole or absent, and degrade to software.
                    let dropped = net.switch_mut(sw_id).remove_query(id);
                    self.channel.remove(dropped);
                    degraded = true;
                    continue;
                }
                query_rules += sw_rules;
                out.switches_touched += 1;
                self.channel.install(sw_rules);
                out.delay_ms = out.delay_ms.max(self.timing.install_ms(sw_rules));
            }
            if query_rules > 0 {
                out.rules_installed += query_rules;
                out.repaired.push(id);
            }
            if degraded {
                out.degraded.push(id);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newton_dataplane::PipelineConfig;
    use newton_net::Topology;
    use newton_packet::{PacketBuilder, TcpFlags};
    use newton_query::catalog;

    fn net(n: usize) -> Network {
        Network::new(Topology::chain(n), PipelineConfig::default())
    }

    fn controller() -> Controller {
        Controller::new(CompilerConfig::default(), 42)
    }

    #[test]
    fn install_and_remove_roundtrip() {
        let mut ctl = controller();
        let mut net = net(3);
        let r = ctl.install(&catalog::q1_new_tcp(), &mut net, 12).unwrap();
        assert_eq!(r.slices, 1, "Q1 fits one 12-stage switch");
        assert!(r.delay_ms <= 20.0);
        assert!(net.total_rules() > 0);
        let rm = ctl.remove(r.id, &mut net).unwrap();
        assert_eq!(rm.rules, r.rules);
        assert_eq!(net.total_rules(), 0);
        assert!(ctl.remove(r.id, &mut net).is_none(), "double remove is a no-op");
    }

    #[test]
    fn installed_query_detects_attack_end_to_end() {
        let mut ctl = controller();
        let mut net = net(3);
        ctl.install(&catalog::q1_new_tcp(), &mut net, 12).unwrap();
        let mut reports = 0;
        for i in 0..catalog::thresholds::NEW_TCP as u16 {
            let pkt = PacketBuilder::new()
                .src_ip(i as u32 + 1)
                .dst_ip(0xAC10_0001)
                .src_port(1000 + i)
                .tcp_flags(TcpFlags::SYN)
                .build();
            reports += net.deliver(&pkt, 0, 2).reports.len();
        }
        assert_eq!(reports, 1);
    }

    #[test]
    fn sliced_install_spans_chain_and_reports_once() {
        let mut ctl = controller();
        let mut net = net(4);
        // Force slicing: give each switch only 4 stages of budget — Q4
        // then needs 4 slices, exactly the 4-hop chain's length.
        let r = ctl.install(&catalog::q4_port_scan(), &mut net, 4).unwrap();
        assert_eq!(r.slices, 4, "Q4 slices on 4-stage switches");

        let mut reports = Vec::new();
        for port in 0..catalog::thresholds::PORT_SCAN as u16 {
            let pkt = PacketBuilder::new()
                .src_ip(0xDEAD)
                .dst_ip(0xAC10_0002)
                .src_port(41_000)
                .dst_port(1000 + port)
                .tcp_flags(TcpFlags::SYN)
                .build();
            reports.extend(net.deliver(&pkt, 0, 3).reports);
        }
        assert_eq!(reports.len(), 1, "CQE reports once");
        // The report comes from the switch holding the final slice.
        assert_eq!(reports[0].0, r.slices - 1);
    }

    #[test]
    fn forwarding_never_interrupted_by_query_churn() {
        let mut ctl = controller();
        let mut net = net(2);
        let pkt = PacketBuilder::new().tcp_flags(TcpFlags::SYN).build();
        let mut delivered = 0;
        for round in 0..5 {
            delivered += u64::from(net.deliver(&pkt, 0, 1).clean_delivery);
            let r = ctl.install(&catalog::all_queries()[round % 9], &mut net, 12).unwrap();
            delivered += u64::from(net.deliver(&pkt, 0, 1).clean_delivery);
            ctl.remove(r.id, &mut net);
            delivered += u64::from(net.deliver(&pkt, 0, 1).clean_delivery);
        }
        assert_eq!(delivered, 15, "every packet forwarded during churn");
        assert_eq!(net.switch(0).forwarded(), 15);
    }

    #[test]
    fn failed_install_rolls_back_every_switch() {
        // Sabotage: pre-fill switch 1's rule tables so the controller's
        // install succeeds on switch 0 but fails on switch 1 - the rollback
        // must leave the whole network exactly as before.
        let mut ctl = controller();
        let mut net = Network::new(
            Topology::chain(2),
            newton_dataplane::PipelineConfig { rule_capacity: 3, ..Default::default() },
        );
        // Occupy switch 1 almost completely with a foreign query installed
        // out-of-band.
        use newton_compiler::compile;
        let filler_cfg = CompilerConfig { registers_per_array: 128, ..Default::default() };
        let filler = compile(&catalog::q2_ssh_brute(), 9_000, &filler_cfg);
        net.switch_mut(1).install(&filler.rules).expect("filler fits alone");
        let baseline_total = net.total_rules();
        let baseline_sw0 = net.switch(0).total_rule_count();

        let result = ctl.install(&catalog::q2_ssh_brute(), &mut net, 12);
        assert!(result.is_err(), "switch 1 must reject the second query at capacity 3");
        assert_eq!(net.total_rules(), baseline_total, "rollback must restore the network");
        assert_eq!(net.switch(0).total_rule_count(), baseline_sw0);
        assert!(ctl.installed().is_empty());

        // The controller remains usable: a small query still installs.
        let ok = ctl.install(&catalog::q1_new_tcp(), &mut net, 12);
        assert!(ok.is_ok(), "controller must recover after a failed install: {ok:?}");
    }

    #[test]
    fn failed_update_restores_the_old_query() {
        // Sabotage mirroring failed_install_rolls_back_every_switch: the
        // old (small) query fits beside the foreign filler, the new one
        // does not — update must fail AND leave the old query installed,
        // running, and detecting.
        let mut ctl = controller();
        let mut net = Network::new(
            Topology::chain(2),
            newton_dataplane::PipelineConfig { rule_capacity: 3, ..Default::default() },
        );
        let filler_cfg = CompilerConfig { registers_per_array: 128, ..Default::default() };
        let filler = newton_compiler::compile(&catalog::q2_ssh_brute(), 9_000, &filler_cfg);
        net.switch_mut(1).install(&filler.rules).expect("filler fits alone");

        let old = ctl.install(&catalog::q1_new_tcp(), &mut net, 12).expect("q1 fits");
        let baseline_total = net.total_rules();
        let baseline_sw0 = net.switch(0).total_rule_count();

        let result = ctl.update(old.id, &catalog::q2_ssh_brute(), &mut net, 12);
        let err = result.expect_err("switch 1 must reject the bigger query at capacity 3");
        let UpdateError::Rejected { restore_delay_ms, .. } = err else {
            panic!("expected Rejected, got {err:?}");
        };
        assert!(restore_delay_ms > 0.0, "the restore's rule-channel cost must surface");
        assert!(ctl.installed().contains_key(&old.id), "old query must survive the failure");
        assert_eq!(net.total_rules(), baseline_total, "network restored to pre-update state");
        assert_eq!(net.switch(0).total_rule_count(), baseline_sw0);

        // The restored query still detects end-to-end.
        let mut reports = 0;
        for i in 0..catalog::thresholds::NEW_TCP as u16 {
            let pkt = PacketBuilder::new()
                .src_ip(i as u32 + 1)
                .dst_ip(0xAC10_0001)
                .src_port(1000 + i)
                .tcp_flags(TcpFlags::SYN)
                .build();
            reports += net.deliver(&pkt, 0, 1).reports.len();
        }
        assert_eq!(reports, 1, "restored query must keep detecting");

        // And a later legitimate update still works, under the same id.
        let mut tighter = catalog::q1_new_tcp();
        tighter.name = "q1_tight".into();
        let swapped = ctl.update(old.id, &tighter, &mut net, 12).expect("small update fits");
        assert_eq!(swapped.id, old.id, "an update keeps the query's id");
        assert!(ctl.installed().contains_key(&old.id));
    }

    #[test]
    fn fifth_install_on_four_slots_errors_and_live_offsets_stay_disjoint() {
        // The regression: allocate_slot used to fall back to slot 0 when
        // all slots were occupied, silently aliasing the 5th query's
        // register ranges onto the 1st's.
        let mut ctl = controller(); // 4 register slots
        let mut net = net(3);
        let queries = catalog::all_queries();
        let ids: Vec<QueryId> =
            (0..4).map(|i| ctl.install(&queries[i], &mut net, 12).unwrap().id).collect();

        // §4.1 invariant: the 4 live queries hold pairwise disjoint
        // register ranges.
        let offsets: Vec<u32> = ids.iter().map(|&id| ctl.register_offset(id).unwrap()).collect();
        let slice = ctl.compiler_config().registers_per_array / ctl.register_slots();
        for (i, &a) in offsets.iter().enumerate() {
            for &b in &offsets[i + 1..] {
                assert!(
                    a.abs_diff(b) >= slice,
                    "offsets {offsets:?} overlap within a {slice}-register slice"
                );
            }
        }

        let rules_before = net.total_rules();
        let err = ctl.install(&queries[4], &mut net, 12).expect_err("5th install must not alias");
        assert_eq!(err, InstallError::SlotsExhausted { slots: 4 });
        assert_eq!(ctl.installed().len(), 4, "the failed install must not register anything");
        assert_eq!(net.total_rules(), rules_before, "and must not touch a switch");
        // The 4 live queries still hold their original offsets.
        for (&id, &off) in ids.iter().zip(&offsets) {
            assert_eq!(ctl.register_offset(id), Some(off));
        }

        // Freeing any slot makes the install go through — on the freed
        // slot, not slot 0.
        let freed = ctl.register_slot(ids[2]).unwrap();
        ctl.remove(ids[2], &mut net).unwrap();
        let r = ctl.install(&queries[4], &mut net, 12).expect("a freed slot must be reusable");
        assert_eq!(ctl.register_slot(r.id), Some(freed));
    }

    #[test]
    fn updating_an_unknown_id_is_a_structured_error_not_a_slot0_install() {
        let mut ctl = controller();
        let mut net = net(2);
        // Never installed.
        let err = ctl.update(42, &catalog::q1_new_tcp(), &mut net, 12).unwrap_err();
        assert_eq!(err, UpdateError::UnknownQuery(42));
        assert!(ctl.installed().is_empty(), "no phantom install");
        assert_eq!(net.total_rules(), 0, "no rules reached any switch");

        // Already removed: same contract.
        let r = ctl.install(&catalog::q1_new_tcp(), &mut net, 12).unwrap();
        ctl.remove(r.id, &mut net).unwrap();
        let err = ctl.update(r.id, &catalog::q1_new_tcp(), &mut net, 12).unwrap_err();
        assert_eq!(err, UpdateError::UnknownQuery(r.id));
        assert_eq!(net.total_rules(), 0);
    }

    #[test]
    fn retune_rejects_thresholds_beyond_u32_instead_of_wrapping() {
        let mut ctl = controller();
        let mut net = net(2);
        let r = ctl.install(&catalog::q1_new_tcp(), &mut net, 12).unwrap();

        // The exact boundary is representable and must succeed…
        let receipt = ctl.retune_threshold(r.id, u64::from(u32::MAX), &mut net).unwrap();
        assert!(receipt.rules >= 1);

        // …one past it used to wrap to threshold 0 (`as u32`); now it is a
        // structured rejection and the installed artifacts keep the last
        // good threshold.
        let err = ctl.retune_threshold(r.id, u64::from(u32::MAX) + 1, &mut net).unwrap_err();
        assert_eq!(
            err,
            RetuneError::ThresholdOutOfRange { requested: u64::from(u32::MAX) + 1, max: u32::MAX }
        );
        use newton_dataplane::RAction;
        let floor = ctl.installed()[&r.id]
            .slices
            .iter()
            .flat_map(|rs| rs.r.iter())
            .filter(|(_, rule)| rule.actions.contains(&RAction::Report))
            .map(|(_, rule)| rule.state_match.lo.max(rule.global_match.lo))
            .max()
            .expect("q1 has a reporting rule");
        assert_eq!(floor, u32::MAX, "rejected retune must leave the last good threshold");
    }

    #[test]
    fn repair_reinstalls_slices_on_a_rebooted_switch() {
        let mut ctl = controller();
        let mut net = net(4);
        // 4-stage budget → Q4 slices across the chain: switch i holds
        // slice i.
        let r = ctl.install(&catalog::q4_port_scan(), &mut net, 4).unwrap();
        assert_eq!(r.slices, 4);
        let victim = 2usize;
        let rules_before = net.switch(victim).total_rule_count();
        assert!(rules_before > 0);

        // Crash: while the switch is down the live placement can't cover
        // the full chain (the chain is cut), so the query degrades.
        assert!(net.fail_switch(victim));
        let out = ctl.repair(&mut net);
        assert_eq!(out.examined, 1);
        assert!(out.repaired.is_empty(), "nothing to install while the holder is down");
        assert_eq!(out.degraded, vec![r.id], "a cut chain cannot run 4 slices");

        // Reboot blank → repair must re-place exactly the lost slice.
        net.restore_switch(victim);
        assert_eq!(net.switch(victim).total_rule_count(), 0, "rebooted blank");
        let out = ctl.repair(&mut net);
        assert_eq!(out.repaired, vec![r.id]);
        assert!(out.degraded.is_empty(), "full coverage is back");
        assert_eq!(out.rules_installed, rules_before);
        assert_eq!(out.switches_touched, 1);
        assert!(out.delay_ms > 0.0, "rule pushes take rule-channel time");
        assert_eq!(net.switch(victim).total_rule_count(), rules_before);

        // CQE detects end-to-end again after the repair.
        let mut reports = Vec::new();
        for port in 0..catalog::thresholds::PORT_SCAN as u16 {
            let pkt = PacketBuilder::new()
                .src_ip(0xDEAD)
                .dst_ip(0xAC10_0002)
                .src_port(41_000)
                .dst_port(1000 + port)
                .tcp_flags(TcpFlags::SYN)
                .build();
            reports.extend(net.deliver(&pkt, 0, 3).reports);
        }
        assert_eq!(reports.len(), 1, "repaired CQE chain reports once");

        // A healthy network needs no further repair.
        let out = ctl.repair(&mut net);
        assert!(out.repaired.is_empty() && out.degraded.is_empty());
        assert_eq!(out.rules_installed, 0);
    }

    #[test]
    fn repair_is_a_noop_without_installed_queries_or_failures() {
        let mut ctl = controller();
        let mut net = net(3);
        assert_eq!(ctl.repair(&mut net), RepairOutcome::default());
        ctl.install(&catalog::q1_new_tcp(), &mut net, 12).unwrap();
        let out = ctl.repair(&mut net);
        assert_eq!(out.examined, 1);
        assert!(out.repaired.is_empty() && out.degraded.is_empty());
        let mut twin_net = Network::new(Topology::chain(3), PipelineConfig::default());
        let mut twin = controller();
        twin.install(&catalog::q1_new_tcp(), &mut twin_net, 12).unwrap();
        assert_eq!(net.total_rules(), twin_net.total_rules(), "repair installed nothing");
    }

    #[test]
    fn update_swaps_thresholds_without_interruption() {
        let mut ctl = controller();
        let mut net = net(2);
        let q = catalog::q1_new_tcp();
        let first = ctl.install(&q, &mut net, 12).unwrap();
        let slot_before = ctl.slots_in_use[&first.id];
        // Drill-down: tighter variant of the same intent.
        let mut tighter = q.clone();
        tighter.name = "q1_tight".into();
        let receipt = ctl.update(first.id, &tighter, &mut net, 12).unwrap();
        assert_eq!(receipt.id, first.id, "an update keeps the query's id");
        assert_eq!(ctl.slots_in_use[&first.id], slot_before, "and its register slot");
        assert!(ctl.installed().contains_key(&first.id));
        assert_eq!(ctl.installed().len(), 1);
        assert!(receipt.delay_ms < 40.0, "an update never costs more than remove + install");
    }

    #[test]
    fn rename_only_update_moves_no_rules() {
        // A renamed intent compiles to identical rules — the diff finds
        // nothing to push, and the compilation cache serves the fetch.
        let mut ctl = controller();
        let mut net = net(2);
        let q = catalog::q1_new_tcp();
        let first = ctl.install(&q, &mut net, 12).unwrap();
        let rules_before = net.total_rules();
        let mut renamed = q.clone();
        renamed.name = "q1_renamed".into();
        let receipt = ctl.update(first.id, &renamed, &mut net, 12).unwrap();
        assert_eq!(receipt.rules, 0, "identical rules: nothing crosses the rule channel");
        assert_eq!(receipt.switches, 0);
        assert_eq!(receipt.delay_ms, 0.0);
        assert_eq!(net.total_rules(), rules_before);
        assert_eq!(ctl.installed()[&first.id].query.name, "q1_renamed");
        assert!(ctl.cache_stats().hits >= 1, "the rename is a cache hit");
    }

    #[test]
    fn diff_update_moves_fewer_rules_than_from_scratch() {
        // A threshold change on a CQE-sliced query only alters reporting ℝ
        // rules in the final slice; the diff path must not re-push the
        // untouched 𝕂/ℍ/𝕊 slices the from-scratch path re-installs.
        let build = || (controller(), net(4));
        let tighten = |q: &mut newton_query::Query| {
            for b in &mut q.branches {
                for p in &mut b.primitives {
                    if let newton_query::ast::Primitive::ResultFilter { value, .. } = p {
                        *value += 5;
                    }
                }
            }
        };

        let (mut diff_ctl, mut diff_net) = build();
        let r = diff_ctl.install(&catalog::q4_port_scan(), &mut diff_net, 4).unwrap();
        assert!(r.slices > 1, "must exercise the sliced path");
        let mut tighter = catalog::q4_port_scan();
        tighten(&mut tighter);
        diff_ctl.reset_channel_stats();
        let diff_receipt = diff_ctl.update(r.id, &tighter, &mut diff_net, 4).unwrap();
        let diff_traffic = diff_ctl.channel_stats();

        let (mut full_ctl, mut full_net) = build();
        full_ctl.set_diff_install(false);
        let fr = full_ctl.install(&catalog::q4_port_scan(), &mut full_net, 4).unwrap();
        full_ctl.reset_channel_stats();
        let full_receipt = full_ctl.update(fr.id, &tighter, &mut full_net, 4).unwrap();
        let full_traffic = full_ctl.channel_stats();

        assert!(
            diff_receipt.rules < full_receipt.rules,
            "diff ({}) must touch fewer rules than from-scratch ({})",
            diff_receipt.rules,
            full_receipt.rules
        );
        assert!(diff_traffic.bytes < full_traffic.bytes, "and move fewer rule-channel bytes");

        // Both paths leave the network in the same state.
        for sw in 0..diff_net.switch_count() {
            assert_eq!(
                diff_net.switch(sw).rules_of_query(r.id),
                full_net.switch(sw).rules_of_query(fr.id),
                "switch {sw}: diff and from-scratch must converge to identical rules"
            );
        }
    }
}
