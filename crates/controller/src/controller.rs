//! The controller facade: compile → place → install, remove, update.
//!
//! All operations are pure table-rule manipulation on live switches;
//! packet forwarding continues throughout (the §6.1 property — contrast
//! with the Sonata reboot model in `newton-baselines`).

use crate::placement::{place_parts, reachable_depth, Placement};
use crate::timing::RuleTimingModel;
use newton_compiler::{compile, compile_sliced, CompilerConfig, QueryPlan};
use newton_dataplane::{QueryId, RuleSet, SetId, SliceInfo};
use newton_net::Network;
use newton_query::Query;
use std::collections::HashMap;

/// Outcome of one query operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstallReceipt {
    pub id: QueryId,
    /// Wall-clock the rule channel took (max over switches — installs are
    /// issued in parallel), from the timing model.
    pub delay_ms: f64,
    /// Total rules touched network-wide.
    pub rules: usize,
    /// Switches touched.
    pub switches: usize,
    /// CQE slices the query was cut into.
    pub slices: usize,
    /// Slices beyond the network's reachable depth: they can never execute
    /// on the data plane, so the query's remainder defers to the software
    /// analyzer (§5.2).
    pub overflow_slices: usize,
}

/// One installed query's bookkeeping. Keeps the compiled artifacts so the
/// controller can re-place slices after a switch failure (or restore the
/// old query when an update's install fails) without recompiling.
#[derive(Debug, Clone)]
pub struct InstalledQuery {
    /// The analyzer plan (probe addresses are slice-relative).
    pub plan: QueryPlan,
    pub placement: Placement,
    /// The original intent — drives the software-interpreter fallback when
    /// a failure degrades the query below data-plane coverage.
    pub query: Query,
    /// Compiled per-slice rule sets, unshifted (stage 0 based).
    pub slices: Vec<RuleSet>,
    /// Pipeline stages each slice occupies.
    pub stage_counts: Vec<usize>,
    /// Snapshot capture set of each slice boundary.
    pub captures: Vec<SetId>,
}

/// Outcome of one [`Controller::repair`] pass over the live topology.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RepairOutcome {
    /// Installed queries examined.
    pub examined: usize,
    /// Queries that had missing slices re-placed this pass.
    pub repaired: Vec<QueryId>,
    /// Queries the live data plane cannot fully execute right now
    /// (placement no longer fits, or the healthy subgraph is too shallow /
    /// partitioned) — they must run on the software analyzer until a later
    /// pass clears them.
    pub degraded: Vec<QueryId>,
    /// Rules pushed network-wide by this pass.
    pub rules_installed: usize,
    /// Switches that received rules.
    pub switches_touched: usize,
    /// Modelled rule-channel wall clock (max over switches — installs are
    /// issued in parallel).
    pub delay_ms: f64,
}

/// The centralized Newton controller.
#[derive(Debug)]
pub struct Controller {
    compiler_cfg: CompilerConfig,
    timing: RuleTimingModel,
    next_id: QueryId,
    installed: HashMap<QueryId, InstalledQuery>,
    /// Concurrent-query slots: each installed query gets a disjoint
    /// `1/slots` slice of every physical register array (§4.1's flexible
    /// register allocation), so independent queries never collide in 𝕊.
    register_slots: u32,
    /// Slot index each live query occupies.
    slots_in_use: HashMap<QueryId, u32>,
}

impl Controller {
    pub fn new(compiler_cfg: CompilerConfig, timing_seed: u64) -> Self {
        Self::with_slots(compiler_cfg, timing_seed, 4)
    }

    /// A controller provisioned for up to `register_slots` concurrent
    /// queries sharing the register arrays.
    pub fn with_slots(compiler_cfg: CompilerConfig, timing_seed: u64, register_slots: u32) -> Self {
        assert!(register_slots >= 1);
        Controller {
            compiler_cfg,
            timing: RuleTimingModel::new(timing_seed),
            next_id: 1,
            installed: HashMap::new(),
            register_slots,
            slots_in_use: HashMap::new(),
        }
    }

    /// The register slice (range, offset) for a new query.
    fn allocate_slot(&mut self, id: QueryId) -> CompilerConfig {
        let used: std::collections::HashSet<u32> = self.slots_in_use.values().copied().collect();
        let slot = (0..self.register_slots).find(|s| !used.contains(s)).unwrap_or(0);
        self.slots_in_use.insert(id, slot);
        let slice = (self.compiler_cfg.registers_per_array / self.register_slots).max(1);
        CompilerConfig {
            registers_per_array: slice,
            register_offset: slot * slice,
            ..self.compiler_cfg
        }
    }

    pub fn compiler_config(&self) -> &CompilerConfig {
        &self.compiler_cfg
    }

    /// The installed queries.
    pub fn installed(&self) -> &HashMap<QueryId, InstalledQuery> {
        &self.installed
    }

    /// Compile and deploy a query network-wide with resilient placement
    /// (Algorithm 2), slicing for CQE when it exceeds one switch's stages.
    ///
    /// Transactional across the network: if any switch rejects its rules
    /// (capacity, layout mismatch), every switch already touched is rolled
    /// back and the register slot is freed — the network is exactly as it
    /// was before the call.
    pub fn install(
        &mut self,
        query: &Query,
        net: &mut Network,
        stages_per_switch: usize,
    ) -> Result<InstallReceipt, newton_dataplane::SwitchError> {
        let id = self.next_id;
        self.next_id += 1;
        let query_cfg = self.allocate_slot(id);
        match self.try_install(query, id, &query_cfg, net, stages_per_switch) {
            Ok(receipt) => Ok(receipt),
            Err(e) => {
                // Roll back every switch the partial install touched.
                for sw in 0..net.switch_count() {
                    net.switch_mut(sw).remove_query(id);
                }
                self.slots_in_use.remove(&id);
                Err(e)
            }
        }
    }

    fn try_install(
        &mut self,
        query: &Query,
        id: QueryId,
        query_cfg: &CompilerConfig,
        net: &mut Network,
        stages_per_switch: usize,
    ) -> Result<InstallReceipt, newton_dataplane::SwitchError> {
        let compilation = compile(query, id, query_cfg);

        // Whole query per switch if it fits; otherwise snapshot-aware CQE
        // slices (chunked in spec order with restored 𝕂s).
        let (rulesets, stage_counts, captures, plan) =
            if compilation.composition.stages() <= stages_per_switch {
                let stages = compilation.composition.stages();
                (
                    vec![compilation.rules.clone()],
                    vec![stages],
                    vec![SetId::Set1],
                    compilation.plan.clone(),
                )
            } else {
                let sliced = compile_sliced(query, id, query_cfg, stages_per_switch);
                let counts = sliced.slice_stage_counts.clone();
                (sliced.slices, counts, sliced.capture_sets, sliced.plan)
            };

        let topo = net.topology().clone();
        let parts: Vec<usize> = rulesets.iter().map(|r| r.total_rule_count()).collect();
        let placement = place_parts(parts, &topo, topo.edge_switches());

        let (total_rules, switches, max_delay) = Self::apply_placement(
            &mut self.timing,
            net,
            id,
            &placement,
            &rulesets,
            &stage_counts,
            &captures,
        )?;

        let depth = reachable_depth(&topo, topo.edge_switches());
        self.installed.insert(
            id,
            InstalledQuery {
                plan,
                placement: placement.clone(),
                query: query.clone(),
                slices: rulesets,
                stage_counts,
                captures,
            },
        );
        Ok(InstallReceipt {
            id,
            delay_ms: max_delay,
            rules: total_rules,
            switches,
            slices: placement.slice_count,
            overflow_slices: placement.slice_count.saturating_sub(depth),
        })
    }

    /// Push a full placement's rules to the network: every switch named by
    /// `placement` receives its slices at stacked stage offsets. Dead
    /// switches are skipped — a crashed box cannot accept config; the
    /// repair pass covers it when it returns. Returns `(rules, switches,
    /// delay_ms)`.
    fn apply_placement(
        timing: &mut RuleTimingModel,
        net: &mut Network,
        id: QueryId,
        placement: &Placement,
        rulesets: &[RuleSet],
        stage_counts: &[usize],
        captures: &[SetId],
    ) -> Result<(usize, usize, f64), newton_dataplane::SwitchError> {
        let mut total_rules = 0usize;
        let mut switches = 0usize;
        let mut max_delay: f64 = 0.0;
        for (sw_id, slices) in placement.slices.iter().enumerate() {
            if slices.is_empty() || !net.router().switch_up(sw_id) {
                continue;
            }
            switches += 1;
            let mut sw_rules = 0usize;
            // A switch holding several slices stacks them at disjoint
            // stage offsets within its pipeline.
            let mut offset = 0usize;
            for &c in slices {
                let len = stage_counts[c];
                let slice = rulesets[c].shift_stages(offset);
                sw_rules += slice.total_rule_count();
                net.switch_mut(sw_id).install(&slice)?;
                net.switch_mut(sw_id).add_slice(
                    id,
                    SliceInfo {
                        index: c as u8,
                        total: placement.slice_count as u8,
                        capture_set: captures[c],
                        restore_set: if c == 0 { captures[0] } else { captures[c - 1] },
                        stages: (offset, offset + len),
                    },
                )?;
                offset += len;
            }
            total_rules += sw_rules;
            max_delay = max_delay.max(timing.install_ms(sw_rules));
        }
        Ok((total_rules, switches, max_delay))
    }

    /// Remove an installed query everywhere.
    pub fn remove(&mut self, id: QueryId, net: &mut Network) -> Option<InstallReceipt> {
        let entry = self.installed.remove(&id)?;
        self.slots_in_use.remove(&id);
        let mut total = 0usize;
        let mut switches = 0usize;
        let mut max_delay: f64 = 0.0;
        for sw_id in 0..net.switch_count() {
            let removed = net.switch_mut(sw_id).remove_query(id);
            if removed > 0 {
                switches += 1;
                total += removed;
                max_delay = max_delay.max(self.timing.remove_ms(removed));
            }
        }
        Some(InstallReceipt {
            id,
            delay_ms: max_delay,
            rules: total,
            switches,
            slices: entry.placement.slice_count,
            overflow_slices: 0,
        })
    }

    /// Retune a live query's report threshold **in place**: the reporting
    /// ℝ rules' match ranges are rewritten on every switch holding them —
    /// a handful of rule modifications, an order of magnitude cheaper than
    /// remove + reinstall, and the query's accumulated epoch state
    /// survives. Returns the total rules modified and the modelled delay.
    ///
    /// The crossing-window width is preserved (the difference `hi - lo` of
    /// each reporting rule), so count vs byte-sum semantics carry over.
    pub fn retune_threshold(
        &mut self,
        id: QueryId,
        new_threshold: u64,
        net: &mut Network,
    ) -> Option<InstallReceipt> {
        if !self.installed.contains_key(&id) {
            return None;
        }
        let mut total = 0usize;
        let mut max_delay: f64 = 0.0;
        for sw_id in 0..net.switch_count() {
            let touched = net.switch_mut(sw_id).update_r_rules(id, &mut |rule| {
                use newton_dataplane::{RAction, RMatch};
                if !rule.actions.contains(&RAction::Report) {
                    return;
                }
                // The reporting match lives on whichever side is bounded;
                // its window width (crossing semantics) is preserved.
                let on_global = rule.global_match != RMatch::ANY;
                let old = if on_global { rule.global_match } else { rule.state_match };
                let lo = new_threshold as u32;
                let hi = lo.saturating_add(old.hi.saturating_sub(old.lo));
                let new = RMatch { lo, hi };
                if on_global {
                    rule.global_match = new;
                } else {
                    rule.state_match = new;
                }
            });
            if touched > 0 {
                total += touched;
                max_delay = max_delay.max(self.timing.install_ms(touched));
            }
        }
        Some(InstallReceipt {
            id,
            delay_ms: max_delay,
            rules: total,
            switches: 0,
            slices: self.installed[&id].placement.slice_count,
            overflow_slices: 0,
        })
    }

    /// Update = atomic remove + install of the new definition. Forwarding
    /// is untouched; only the query's rules change.
    ///
    /// Atomic in outcome: if the new query's install fails, the old query
    /// is re-installed from its stored artifacts (same register slot, same
    /// placement) and the error is returned — the caller observes either
    /// the new query running or the old one untouched, never neither.
    pub fn update(
        &mut self,
        old: QueryId,
        query: &Query,
        net: &mut Network,
        stages_per_switch: usize,
    ) -> Result<InstallReceipt, newton_dataplane::SwitchError> {
        let prior = self.installed.get(&old).cloned();
        let prior_slot = self.slots_in_use.get(&old).copied();
        let removal = self.remove(old, net);
        match self.install(query, net, stages_per_switch) {
            Ok(mut receipt) => {
                if let Some(r) = removal {
                    receipt.delay_ms += r.delay_ms;
                }
                Ok(receipt)
            }
            Err(e) => {
                if let Some(entry) = prior {
                    // Put the old query back. Its rules were just removed
                    // and the failed install was rolled back, so the very
                    // capacity it occupied is free again.
                    if let Some(slot) = prior_slot {
                        self.slots_in_use.insert(old, slot);
                    }
                    let restored = Self::apply_placement(
                        &mut self.timing,
                        net,
                        old,
                        &entry.placement,
                        &entry.slices,
                        &entry.stage_counts,
                        &entry.captures,
                    );
                    match restored {
                        Ok(_) => {
                            self.installed.insert(old, entry);
                        }
                        Err(_) => {
                            // Should be unreachable (see above); leave the
                            // network clean rather than half-restored.
                            for sw in 0..net.switch_count() {
                                net.switch_mut(sw).remove_query(old);
                            }
                            self.slots_in_use.remove(&old);
                        }
                    }
                }
                Err(e)
            }
        }
    }

    /// One repair pass after topology churn: re-run Algorithm 2 over the
    /// *healthy* subgraph and push every slice the live placement wants
    /// that its switch no longer holds — the missing slices of queries
    /// whose holders crashed and rebooted blank. Queries the live data
    /// plane cannot fully execute (the healthy subgraph is too shallow,
    /// partitioned from all edges, or a switch rejects its rules) are
    /// listed as degraded for the driver to mirror into the software
    /// analyzer.
    ///
    /// Deterministic: queries are visited in id order, switches in id
    /// order, so the rule-channel timing model draws identically on every
    /// run.
    pub fn repair(&mut self, net: &mut Network) -> RepairOutcome {
        let mut out = RepairOutcome::default();
        if self.installed.is_empty() {
            return out;
        }
        let full = net.topology().clone();
        let full_depth = reachable_depth(&full, full.edge_switches());
        let live = net.live_topology();
        let live_edges: Vec<usize> = live.edge_switches().to_vec();
        let live_depth = reachable_depth(&live, &live_edges);
        let mut ids: Vec<QueryId> = self.installed.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let entry = &self.installed[&id];
            out.examined += 1;
            // Slices beyond the full topology's depth never ran on the
            // data plane (install-time overflow, §5.2); only the runnable
            // prefix gauges failure-induced degradation.
            let runnable = entry.placement.slice_count.min(full_depth);
            let mut degraded = live_edges.is_empty() || live_depth < runnable;
            let parts: Vec<usize> = entry.slices.iter().map(RuleSet::total_rule_count).collect();
            let want = place_parts(parts, &live, &live_edges);
            let mut query_rules = 0usize;
            for (sw_id, slices) in want.slices.iter().enumerate() {
                if slices.is_empty() {
                    continue;
                }
                let have = net.switch(sw_id).assigned_slices(id);
                let missing: Vec<usize> = slices
                    .iter()
                    .copied()
                    .filter(|&c| !have.iter().any(|i| i.index as usize == c))
                    .collect();
                if missing.is_empty() {
                    continue;
                }
                let mut offset = have.iter().map(|i| i.stages.1).max().unwrap_or(0);
                let mut sw_rules = 0usize;
                let mut failed = false;
                for c in missing {
                    let len = entry.stage_counts[c];
                    let slice = entry.slices[c].shift_stages(offset);
                    sw_rules += slice.total_rule_count();
                    let pushed = net.switch_mut(sw_id).install(&slice).and_then(|()| {
                        net.switch_mut(sw_id).add_slice(
                            id,
                            SliceInfo {
                                index: c as u8,
                                total: entry.placement.slice_count as u8,
                                capture_set: entry.captures[c],
                                restore_set: if c == 0 {
                                    entry.captures[0]
                                } else {
                                    entry.captures[c - 1]
                                },
                                stages: (offset, offset + len),
                            },
                        )
                    });
                    if pushed.is_err() {
                        failed = true;
                        break;
                    }
                    offset += len;
                }
                if failed {
                    // The switch can't take the query back consistently
                    // (capacity reclaimed by others, slice-cursor clash);
                    // drop whatever of the query it held so it is either
                    // whole or absent, and degrade to software.
                    net.switch_mut(sw_id).remove_query(id);
                    degraded = true;
                    continue;
                }
                query_rules += sw_rules;
                out.switches_touched += 1;
                out.delay_ms = out.delay_ms.max(self.timing.install_ms(sw_rules));
            }
            if query_rules > 0 {
                out.rules_installed += query_rules;
                out.repaired.push(id);
            }
            if degraded {
                out.degraded.push(id);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newton_dataplane::PipelineConfig;
    use newton_net::Topology;
    use newton_packet::{PacketBuilder, TcpFlags};
    use newton_query::catalog;

    fn net(n: usize) -> Network {
        Network::new(Topology::chain(n), PipelineConfig::default())
    }

    fn controller() -> Controller {
        Controller::new(CompilerConfig::default(), 42)
    }

    #[test]
    fn install_and_remove_roundtrip() {
        let mut ctl = controller();
        let mut net = net(3);
        let r = ctl.install(&catalog::q1_new_tcp(), &mut net, 12).unwrap();
        assert_eq!(r.slices, 1, "Q1 fits one 12-stage switch");
        assert!(r.delay_ms <= 20.0);
        assert!(net.total_rules() > 0);
        let rm = ctl.remove(r.id, &mut net).unwrap();
        assert_eq!(rm.rules, r.rules);
        assert_eq!(net.total_rules(), 0);
        assert!(ctl.remove(r.id, &mut net).is_none(), "double remove is a no-op");
    }

    #[test]
    fn installed_query_detects_attack_end_to_end() {
        let mut ctl = controller();
        let mut net = net(3);
        ctl.install(&catalog::q1_new_tcp(), &mut net, 12).unwrap();
        let mut reports = 0;
        for i in 0..catalog::thresholds::NEW_TCP as u16 {
            let pkt = PacketBuilder::new()
                .src_ip(i as u32 + 1)
                .dst_ip(0xAC10_0001)
                .src_port(1000 + i)
                .tcp_flags(TcpFlags::SYN)
                .build();
            reports += net.deliver(&pkt, 0, 2).reports.len();
        }
        assert_eq!(reports, 1);
    }

    #[test]
    fn sliced_install_spans_chain_and_reports_once() {
        let mut ctl = controller();
        let mut net = net(4);
        // Force slicing: give each switch only 4 stages of budget — Q4
        // then needs 4 slices, exactly the 4-hop chain's length.
        let r = ctl.install(&catalog::q4_port_scan(), &mut net, 4).unwrap();
        assert_eq!(r.slices, 4, "Q4 slices on 4-stage switches");

        let mut reports = Vec::new();
        for port in 0..catalog::thresholds::PORT_SCAN as u16 {
            let pkt = PacketBuilder::new()
                .src_ip(0xDEAD)
                .dst_ip(0xAC10_0002)
                .src_port(41_000)
                .dst_port(1000 + port)
                .tcp_flags(TcpFlags::SYN)
                .build();
            reports.extend(net.deliver(&pkt, 0, 3).reports);
        }
        assert_eq!(reports.len(), 1, "CQE reports once");
        // The report comes from the switch holding the final slice.
        assert_eq!(reports[0].0, r.slices - 1);
    }

    #[test]
    fn forwarding_never_interrupted_by_query_churn() {
        let mut ctl = controller();
        let mut net = net(2);
        let pkt = PacketBuilder::new().tcp_flags(TcpFlags::SYN).build();
        let mut delivered = 0;
        for round in 0..5 {
            delivered += u64::from(net.deliver(&pkt, 0, 1).clean_delivery);
            let r = ctl.install(&catalog::all_queries()[round % 9], &mut net, 12).unwrap();
            delivered += u64::from(net.deliver(&pkt, 0, 1).clean_delivery);
            ctl.remove(r.id, &mut net);
            delivered += u64::from(net.deliver(&pkt, 0, 1).clean_delivery);
        }
        assert_eq!(delivered, 15, "every packet forwarded during churn");
        assert_eq!(net.switch(0).forwarded(), 15);
    }

    #[test]
    fn failed_install_rolls_back_every_switch() {
        // Sabotage: pre-fill switch 1's rule tables so the controller's
        // install succeeds on switch 0 but fails on switch 1 - the rollback
        // must leave the whole network exactly as before.
        let mut ctl = controller();
        let mut net = Network::new(
            Topology::chain(2),
            newton_dataplane::PipelineConfig { rule_capacity: 3, ..Default::default() },
        );
        // Occupy switch 1 almost completely with a foreign query installed
        // out-of-band.
        use newton_compiler::compile;
        let filler_cfg = CompilerConfig { registers_per_array: 128, ..Default::default() };
        let filler = compile(&catalog::q2_ssh_brute(), 9_000, &filler_cfg);
        net.switch_mut(1).install(&filler.rules).expect("filler fits alone");
        let baseline_total = net.total_rules();
        let baseline_sw0 = net.switch(0).total_rule_count();

        let result = ctl.install(&catalog::q2_ssh_brute(), &mut net, 12);
        assert!(result.is_err(), "switch 1 must reject the second query at capacity 3");
        assert_eq!(net.total_rules(), baseline_total, "rollback must restore the network");
        assert_eq!(net.switch(0).total_rule_count(), baseline_sw0);
        assert!(ctl.installed().is_empty());

        // The controller remains usable: a small query still installs.
        let ok = ctl.install(&catalog::q1_new_tcp(), &mut net, 12);
        assert!(ok.is_ok(), "controller must recover after a failed install: {ok:?}");
    }

    #[test]
    fn failed_update_restores_the_old_query() {
        // Sabotage mirroring failed_install_rolls_back_every_switch: the
        // old (small) query fits beside the foreign filler, the new one
        // does not — update must fail AND leave the old query installed,
        // running, and detecting.
        let mut ctl = controller();
        let mut net = Network::new(
            Topology::chain(2),
            newton_dataplane::PipelineConfig { rule_capacity: 3, ..Default::default() },
        );
        let filler_cfg = CompilerConfig { registers_per_array: 128, ..Default::default() };
        let filler = newton_compiler::compile(&catalog::q2_ssh_brute(), 9_000, &filler_cfg);
        net.switch_mut(1).install(&filler.rules).expect("filler fits alone");

        let old = ctl.install(&catalog::q1_new_tcp(), &mut net, 12).expect("q1 fits");
        let baseline_total = net.total_rules();
        let baseline_sw0 = net.switch(0).total_rule_count();

        let result = ctl.update(old.id, &catalog::q2_ssh_brute(), &mut net, 12);
        assert!(result.is_err(), "switch 1 must reject the bigger query at capacity 3");
        assert!(ctl.installed().contains_key(&old.id), "old query must survive the failure");
        assert_eq!(net.total_rules(), baseline_total, "network restored to pre-update state");
        assert_eq!(net.switch(0).total_rule_count(), baseline_sw0);

        // The restored query still detects end-to-end.
        let mut reports = 0;
        for i in 0..catalog::thresholds::NEW_TCP as u16 {
            let pkt = PacketBuilder::new()
                .src_ip(i as u32 + 1)
                .dst_ip(0xAC10_0001)
                .src_port(1000 + i)
                .tcp_flags(TcpFlags::SYN)
                .build();
            reports += net.deliver(&pkt, 0, 1).reports.len();
        }
        assert_eq!(reports, 1, "restored query must keep detecting");

        // And a later legitimate update still works.
        let mut tighter = catalog::q1_new_tcp();
        tighter.name = "q1_tight".into();
        let swapped = ctl.update(old.id, &tighter, &mut net, 12).expect("small update fits");
        assert!(ctl.installed().contains_key(&swapped.id));
        assert!(!ctl.installed().contains_key(&old.id));
    }

    #[test]
    fn repair_reinstalls_slices_on_a_rebooted_switch() {
        let mut ctl = controller();
        let mut net = net(4);
        // 4-stage budget → Q4 slices across the chain: switch i holds
        // slice i.
        let r = ctl.install(&catalog::q4_port_scan(), &mut net, 4).unwrap();
        assert_eq!(r.slices, 4);
        let victim = 2usize;
        let rules_before = net.switch(victim).total_rule_count();
        assert!(rules_before > 0);

        // Crash: while the switch is down the live placement can't cover
        // the full chain (the chain is cut), so the query degrades.
        assert!(net.fail_switch(victim));
        let out = ctl.repair(&mut net);
        assert_eq!(out.examined, 1);
        assert!(out.repaired.is_empty(), "nothing to install while the holder is down");
        assert_eq!(out.degraded, vec![r.id], "a cut chain cannot run 4 slices");

        // Reboot blank → repair must re-place exactly the lost slice.
        net.restore_switch(victim);
        assert_eq!(net.switch(victim).total_rule_count(), 0, "rebooted blank");
        let out = ctl.repair(&mut net);
        assert_eq!(out.repaired, vec![r.id]);
        assert!(out.degraded.is_empty(), "full coverage is back");
        assert_eq!(out.rules_installed, rules_before);
        assert_eq!(out.switches_touched, 1);
        assert!(out.delay_ms > 0.0, "rule pushes take rule-channel time");
        assert_eq!(net.switch(victim).total_rule_count(), rules_before);

        // CQE detects end-to-end again after the repair.
        let mut reports = Vec::new();
        for port in 0..catalog::thresholds::PORT_SCAN as u16 {
            let pkt = PacketBuilder::new()
                .src_ip(0xDEAD)
                .dst_ip(0xAC10_0002)
                .src_port(41_000)
                .dst_port(1000 + port)
                .tcp_flags(TcpFlags::SYN)
                .build();
            reports.extend(net.deliver(&pkt, 0, 3).reports);
        }
        assert_eq!(reports.len(), 1, "repaired CQE chain reports once");

        // A healthy network needs no further repair.
        let out = ctl.repair(&mut net);
        assert!(out.repaired.is_empty() && out.degraded.is_empty());
        assert_eq!(out.rules_installed, 0);
    }

    #[test]
    fn repair_is_a_noop_without_installed_queries_or_failures() {
        let mut ctl = controller();
        let mut net = net(3);
        assert_eq!(ctl.repair(&mut net), RepairOutcome::default());
        ctl.install(&catalog::q1_new_tcp(), &mut net, 12).unwrap();
        let out = ctl.repair(&mut net);
        assert_eq!(out.examined, 1);
        assert!(out.repaired.is_empty() && out.degraded.is_empty());
        let mut twin_net = Network::new(Topology::chain(3), PipelineConfig::default());
        let mut twin = controller();
        twin.install(&catalog::q1_new_tcp(), &mut twin_net, 12).unwrap();
        assert_eq!(net.total_rules(), twin_net.total_rules(), "repair installed nothing");
    }

    #[test]
    fn update_swaps_thresholds_without_interruption() {
        let mut ctl = controller();
        let mut net = net(2);
        let q = catalog::q1_new_tcp();
        let first = ctl.install(&q, &mut net, 12).unwrap();
        // Drill-down: tighter variant of the same intent.
        let mut tighter = q.clone();
        tighter.name = "q1_tight".into();
        let receipt = ctl.update(first.id, &tighter, &mut net, 12).unwrap();
        assert_ne!(receipt.id, first.id);
        assert!(ctl.installed().contains_key(&receipt.id));
        assert!(!ctl.installed().contains_key(&first.id));
        assert!(receipt.delay_ms < 40.0, "update = remove + install, both fast");
    }
}
