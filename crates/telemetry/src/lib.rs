//! Deterministic metrics/event layer for the Newton reproduction.
//!
//! The paper's whole evaluation is a set of *time series* — per-stage
//! resource curves (Figs. 10–13), message overhead over epochs, failure
//! timelines (Fig. 9) — so the runtime needs first-class counters instead
//! of one end-of-run aggregate. This crate provides:
//!
//! * [`Telemetry`] — a sink trait with a zero-overhead [`NoopSink`]
//!   default. `NoopSink` sets `ENABLED = false`, so every instrumentation
//!   site guarded by `if T::ENABLED { ... }` monomorphizes to no code at
//!   all (the perf bench gates this at < 2 % on the pipeline hot path).
//! * [`Recorder`] — the real sink: a structured, **deterministic**
//!   [`Journal`] keyed by modeled time (epoch index / modeled ms, never
//!   wall clock) plus a separate, explicitly **nondeterministic**
//!   [`Profile`] section for real executor timings.
//!
//! The journal's hard guarantee: for a fixed trace and event schedule it
//! is byte-identical across executor thread counts {1, 2, 4, 8}. Anything
//! that cannot promise that (wall-clock durations, queue depths, backoff
//! counts) lives in the [`Profile`] and is serialized separately.

use std::fmt::Write as _;

/// Query identifier (mirrors `newton-dataplane`'s `QueryId`; kept as a
/// plain `u32` so this crate stays dependency-free).
pub type QueryId = u32;
/// Network node identifier (mirrors `newton-net`'s `NodeId`).
pub type NodeId = usize;

/// One deterministic journal event. Every variant is keyed by modeled
/// time — an epoch index or a modeled rule-channel delay — never by wall
/// clock.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Core: one epoch's aggregate traffic/report counters.
    EpochSummary {
        epoch: u64,
        packets: u64,
        messages: u64,
        message_bytes: u64,
        unrouted: u64,
        snapshot_bytes: u64,
        /// Reported-key count per query this epoch, sorted by query id.
        reported: Vec<(QueryId, u64)>,
    },
    /// Dataplane: per-switch per-stage occupancy and resource
    /// utilization gauge (absolute units, same categories as
    /// `ResourceVector`).
    StageGauge {
        epoch: u64,
        switch: NodeId,
        stage: usize,
        /// Module instances resident in the stage.
        modules: usize,
        /// Table rules installed across those instances.
        rules: usize,
        sram: f64,
        tcam: f64,
        hash_bits: f64,
        salus: f64,
    },
    /// Dataplane: per-switch state-bank counters accumulated over the
    /// epoch (sketch insertions, hash collisions, value evictions).
    StateBank { epoch: u64, switch: NodeId, insertions: u64, collisions: u64, evictions: u64 },
    /// Net: per-link traffic counters for the epoch (canonical link
    /// order `a <= b`, emitted sorted by link key).
    LinkLoad {
        epoch: u64,
        a: NodeId,
        b: NodeId,
        packets: u64,
        payload_bytes: u64,
        snapshot_bytes: u64,
    },
    /// Controller span: a query install (or the install half of an
    /// update), carrying the modeled rule-channel delay.
    Install {
        epoch: u64,
        query: QueryId,
        rules: usize,
        switches: usize,
        slices: usize,
        overflow_slices: usize,
        delay_ms: f64,
    },
    /// Controller span: a query removal.
    Remove { epoch: u64, query: QueryId, rules: usize, switches: usize, delay_ms: f64 },
    /// Controller span: an in-place query update. Keyed to the query's
    /// **stable** id (updates never mint a new one), so a query's journal
    /// trail reads install → update* → remove under a single key.
    /// `diff` tells whether the diff-install path served it; `rules`
    /// counts rules actually moved (removed + installed, 0 for a no-op
    /// diff such as a rename).
    Update {
        epoch: u64,
        query: QueryId,
        rules: usize,
        switches: usize,
        slices: usize,
        diff: bool,
        delay_ms: f64,
    },
    /// Controller span: one repair pass over the live topology.
    Repair {
        epoch: u64,
        examined: usize,
        repaired: Vec<QueryId>,
        degraded: Vec<QueryId>,
        rules_installed: usize,
        switches_touched: usize,
        delay_ms: f64,
    },
    /// A query fell back to the software interpreter (placement no
    /// longer executes on the live data plane).
    QueryDegraded { epoch: u64, query: QueryId },
    /// A degraded query's hardware placement was restored; the software
    /// twin retires at this epoch boundary.
    QueryHealed { epoch: u64, query: QueryId },
    /// Switch failures that destroyed installed rules this epoch.
    StateLoss { epoch: u64, switches: usize },
    /// Dataplane hot path: one report emitted by the PHV walk
    /// (recorded by `Switch::process_sink` when the sink is enabled).
    SwitchReport { query: QueryId, branch: u8, hash: u32, state: u32 },
    /// One packet's full execution trace (the `NEWTON_TRACE_PACKET`
    /// hook), rendered per query.
    PacketTrace { index: u64, switch: NodeId, traces: Vec<String> },
}

impl Event {
    /// One event as a single JSON object — the same bytes
    /// [`Journal::to_jsonl`] would emit for it (fixed key order, shortest
    /// round-trip floats). Lets streaming consumers (`newtond`
    /// subscribers) forward events one at a time without re-serializing
    /// the whole journal.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_event_json(&mut out, self);
        out
    }
}

/// A telemetry sink. Instrumentation sites guard event construction with
/// `if T::ENABLED { ... }`; [`NoopSink`] sets the flag to `false` so the
/// whole branch — including event construction — compiles away.
pub trait Telemetry {
    /// Whether this sink observes anything at all.
    const ENABLED: bool = true;
    /// Record one event.
    fn record(&mut self, event: Event);
}

/// The zero-overhead default sink: records nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl Telemetry for NoopSink {
    const ENABLED: bool = false;
    #[inline(always)]
    fn record(&mut self, _event: Event) {}
}

/// The recording sink: deterministic [`Journal`] + nondeterministic
/// [`Profile`], kept strictly apart so the journal's byte-identity
/// guarantee survives profiling.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    pub journal: Journal,
    pub profile: Profile,
}

impl Recorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop everything recorded so far (journal and profile).
    pub fn clear(&mut self) {
        self.journal.clear();
        self.profile = Profile::default();
    }
}

impl Telemetry for Recorder {
    fn record(&mut self, event: Event) {
        self.journal.push(event);
    }
}

/// The deterministic event journal: an append-only list of [`Event`]s in
/// emission order, exportable as JSONL.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Journal {
    events: Vec<Event>,
}

impl Journal {
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    pub fn events(&self) -> &[Event] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Serialize the journal as JSON Lines: one event per line, keys in
    /// fixed order, floats in Rust's shortest round-trip representation.
    /// Identical event sequences produce identical bytes — this string is
    /// what the thread-count-invariance tests compare.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            write_event_json(&mut out, e);
            out.push('\n');
        }
        out
    }
}

fn write_event_json(out: &mut String, e: &Event) {
    match e {
        Event::EpochSummary {
            epoch,
            packets,
            messages,
            message_bytes,
            unrouted,
            snapshot_bytes,
            reported,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"epoch\",\"epoch\":{epoch},\"packets\":{packets},\
                 \"messages\":{messages},\"message_bytes\":{message_bytes},\
                 \"unrouted\":{unrouted},\"snapshot_bytes\":{snapshot_bytes},\"reported\":["
            );
            for (i, (q, n)) in reported.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"query\":{q},\"keys\":{n}}}");
            }
            out.push_str("]}");
        }
        Event::StageGauge {
            epoch,
            switch,
            stage,
            modules,
            rules,
            sram,
            tcam,
            hash_bits,
            salus,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"stage_gauge\",\"epoch\":{epoch},\"switch\":{switch},\
                 \"stage\":{stage},\"modules\":{modules},\"rules\":{rules},\
                 \"sram\":{sram},\"tcam\":{tcam},\"hash_bits\":{hash_bits},\"salus\":{salus}}}"
            );
        }
        Event::StateBank { epoch, switch, insertions, collisions, evictions } => {
            let _ = write!(
                out,
                "{{\"type\":\"state_bank\",\"epoch\":{epoch},\"switch\":{switch},\
                 \"insertions\":{insertions},\"collisions\":{collisions},\
                 \"evictions\":{evictions}}}"
            );
        }
        Event::LinkLoad { epoch, a, b, packets, payload_bytes, snapshot_bytes } => {
            let _ = write!(
                out,
                "{{\"type\":\"link_load\",\"epoch\":{epoch},\"a\":{a},\"b\":{b},\
                 \"packets\":{packets},\"payload_bytes\":{payload_bytes},\
                 \"snapshot_bytes\":{snapshot_bytes}}}"
            );
        }
        Event::Install { epoch, query, rules, switches, slices, overflow_slices, delay_ms } => {
            let _ = write!(
                out,
                "{{\"type\":\"install\",\"epoch\":{epoch},\"query\":{query},\"rules\":{rules},\
                 \"switches\":{switches},\"slices\":{slices},\
                 \"overflow_slices\":{overflow_slices},\"delay_ms\":{delay_ms}}}"
            );
        }
        Event::Remove { epoch, query, rules, switches, delay_ms } => {
            let _ = write!(
                out,
                "{{\"type\":\"remove\",\"epoch\":{epoch},\"query\":{query},\"rules\":{rules},\
                 \"switches\":{switches},\"delay_ms\":{delay_ms}}}"
            );
        }
        Event::Update { epoch, query, rules, switches, slices, diff, delay_ms } => {
            let _ = write!(
                out,
                "{{\"type\":\"update\",\"epoch\":{epoch},\"query\":{query},\"rules\":{rules},\
                 \"switches\":{switches},\"slices\":{slices},\"diff\":{diff},\
                 \"delay_ms\":{delay_ms}}}"
            );
        }
        Event::Repair {
            epoch,
            examined,
            repaired,
            degraded,
            rules_installed,
            switches_touched,
            delay_ms,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"repair\",\"epoch\":{epoch},\"examined\":{examined},\"repaired\":"
            );
            write_id_list(out, repaired);
            out.push_str(",\"degraded\":");
            write_id_list(out, degraded);
            let _ = write!(
                out,
                ",\"rules_installed\":{rules_installed},\
                 \"switches_touched\":{switches_touched},\"delay_ms\":{delay_ms}}}"
            );
        }
        Event::QueryDegraded { epoch, query } => {
            let _ = write!(out, "{{\"type\":\"degraded\",\"epoch\":{epoch},\"query\":{query}}}");
        }
        Event::QueryHealed { epoch, query } => {
            let _ = write!(out, "{{\"type\":\"healed\",\"epoch\":{epoch},\"query\":{query}}}");
        }
        Event::StateLoss { epoch, switches } => {
            let _ = write!(
                out,
                "{{\"type\":\"state_loss\",\"epoch\":{epoch},\"switches\":{switches}}}"
            );
        }
        Event::SwitchReport { query, branch, hash, state } => {
            let _ = write!(
                out,
                "{{\"type\":\"report\",\"query\":{query},\"branch\":{branch},\
                 \"hash\":{hash},\"state\":{state}}}"
            );
        }
        Event::PacketTrace { index, switch, traces } => {
            let _ = write!(
                out,
                "{{\"type\":\"packet_trace\",\"index\":{index},\"switch\":{switch},\"traces\":["
            );
            for (i, t) in traces.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(out, t);
            }
            out.push_str("]}");
        }
    }
}

fn write_id_list(out: &mut String, ids: &[QueryId]) {
    out.push('[');
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{id}");
    }
    out.push(']');
}

/// Append `s` as a JSON string literal (quotes + escapes).
fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Executor profiling — **explicitly nondeterministic**. Wall-clock
/// durations, queue depths and backoff counts vary run to run and across
/// thread counts, so they live here, never in the [`Journal`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// Parallel batches executed.
    pub batches: u64,
    /// Packet-hops executed by pool workers.
    pub hops: u64,
    /// Summed worker busy wall time, nanoseconds.
    pub busy_ns: u64,
    /// Deepest per-switch FIFO queue seen at batch setup.
    pub max_queue_depth: usize,
    /// Backoff tiers taken while waiting on an upstream hop.
    pub spins: u64,
    pub yields: u64,
    pub sleeps: u64,
}

impl Profile {
    /// Fold another profile into this one (per-epoch accumulation).
    /// Counters saturate at `u64::MAX` instead of wrapping: a profile
    /// accumulated over an unbounded daemon lifetime must never panic a
    /// debug build or wrap a release one mid-soak.
    pub fn merge(&mut self, o: &Profile) {
        self.batches = self.batches.saturating_add(o.batches);
        self.hops = self.hops.saturating_add(o.hops);
        self.busy_ns = self.busy_ns.saturating_add(o.busy_ns);
        self.max_queue_depth = self.max_queue_depth.max(o.max_queue_depth);
        self.spins = self.spins.saturating_add(o.spins);
        self.yields = self.yields.saturating_add(o.yields);
        self.sleeps = self.sleeps.saturating_add(o.sleeps);
    }

    /// Mean wall time per packet-hop, nanoseconds (0 when no hops ran on
    /// the pool).
    pub fn mean_hop_ns(&self) -> f64 {
        if self.hops == 0 {
            0.0
        } else {
            self.busy_ns as f64 / self.hops as f64
        }
    }

    /// One-line JSON, tagged nondeterministic so it can never be
    /// mistaken for journal output.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"type\":\"profile\",\"nondeterministic\":true,\"batches\":{},\"hops\":{},\
             \"busy_ns\":{},\"max_queue_depth\":{},\"spins\":{},\"yields\":{},\"sleeps\":{}}}",
            self.batches,
            self.hops,
            self.busy_ns,
            self.max_queue_depth,
            self.spins,
            self.yields,
            self.sleeps
        )
    }
}

/// Render a Markdown-ish table (right-aligned cells) as a `String`: the
/// shared presentation layer behind every example's `--report` output and
/// the bench harness tables.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n## {title}\n");
    let widths: Vec<usize> = header
        .iter()
        .enumerate()
        .map(|(i, h)| rows.iter().map(|r| r[i].len()).chain([h.len()]).max().unwrap_or(4))
        .collect();
    let fmt_row = |out: &mut String, cells: &[String]| {
        let cells: Vec<String> =
            cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
        let _ = writeln!(out, "| {} |", cells.join(" | "));
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    fmt_row(&mut out, &header_cells);
    let _ = writeln!(
        out,
        "|{}|",
        widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|")
    );
    for r in rows {
        fmt_row(&mut out, r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_disabled_at_compile_time() {
        // The instrumentation idiom: event construction sits behind the
        // const flag, so with NoopSink this entire branch is dead code.
        fn instrument<T: Telemetry>(sink: &mut T) -> bool {
            if T::ENABLED {
                sink.record(Event::StateLoss { epoch: 0, switches: 1 });
                return true;
            }
            false
        }
        assert!(!instrument(&mut NoopSink));
        let mut rec = Recorder::new();
        assert!(instrument(&mut rec));
        assert_eq!(rec.journal.len(), 1);
    }

    #[test]
    fn jsonl_is_deterministic_and_escaped() {
        let mut j = Journal::default();
        j.push(Event::EpochSummary {
            epoch: 0,
            packets: 10,
            messages: 2,
            message_bytes: 64,
            unrouted: 0,
            snapshot_bytes: 24,
            reported: vec![(1, 3), (4, 1)],
        });
        j.push(Event::PacketTrace {
            index: 7,
            switch: 0,
            traces: vec!["line1\nline2 \"quoted\"".into()],
        });
        let a = j.to_jsonl();
        let b = j.clone().to_jsonl();
        assert_eq!(a, b, "same events, same bytes");
        assert_eq!(a.lines().count(), 2);
        assert!(a.contains("\"reported\":[{\"query\":1,\"keys\":3},{\"query\":4,\"keys\":1}]"));
        assert!(a.contains("line1\\nline2 \\\"quoted\\\""), "strings are JSON-escaped: {a}");
    }

    #[test]
    fn float_fields_round_trip_shortest_repr() {
        let mut j = Journal::default();
        j.push(Event::Install {
            epoch: 0,
            query: 1,
            rules: 12,
            switches: 3,
            slices: 1,
            overflow_slices: 0,
            delay_ms: 0.1 + 0.2,
        });
        // Rust's shortest round-trip float formatting is deterministic:
        // the exact bits 0.1+0.2 always print as 0.30000000000000004.
        assert!(j.to_jsonl().contains("\"delay_ms\":0.30000000000000004"));
    }

    #[test]
    fn profile_merges_and_stays_out_of_the_journal() {
        let mut rec = Recorder::new();
        rec.profile.merge(&Profile {
            batches: 2,
            hops: 100,
            busy_ns: 1000,
            max_queue_depth: 5,
            spins: 1,
            yields: 2,
            sleeps: 3,
        });
        rec.profile.merge(&Profile { batches: 1, hops: 50, busy_ns: 500, ..Default::default() });
        assert_eq!(rec.profile.batches, 3);
        assert_eq!(rec.profile.hops, 150);
        assert_eq!(rec.profile.max_queue_depth, 5);
        assert!((rec.profile.mean_hop_ns() - 10.0).abs() < 1e-12);
        assert!(rec.journal.is_empty(), "profiling never touches the journal");
        assert!(rec.profile.to_json().contains("\"nondeterministic\":true"));
        assert_eq!(Profile::default().mean_hop_ns(), 0.0);
    }

    #[test]
    fn profile_merge_saturates_instead_of_overflowing() {
        let mut near_full = Profile {
            batches: u64::MAX - 1,
            hops: u64::MAX,
            busy_ns: u64::MAX - 10,
            max_queue_depth: usize::MAX,
            spins: u64::MAX,
            yields: 0,
            sleeps: 5,
        };
        // Would panic in debug builds (and wrap in release) under `+=`.
        near_full.merge(&Profile {
            batches: 100,
            hops: 100,
            busy_ns: 100,
            max_queue_depth: 3,
            spins: 1,
            yields: u64::MAX,
            sleeps: 0,
        });
        assert_eq!(near_full.batches, u64::MAX);
        assert_eq!(near_full.hops, u64::MAX);
        assert_eq!(near_full.busy_ns, u64::MAX);
        assert_eq!(near_full.max_queue_depth, usize::MAX);
        assert_eq!(near_full.spins, u64::MAX);
        assert_eq!(near_full.yields, u64::MAX);
        assert_eq!(near_full.sleeps, 5);
        // Saturated totals still render.
        assert!(near_full.to_json().contains("\"nondeterministic\":true"));
    }

    #[test]
    fn table_renderer_right_aligns() {
        let s = render_table(
            "Demo",
            &["name", "rate"],
            &[vec!["a".into(), "10".into()], vec!["long-name".into(), "9".into()]],
        );
        assert!(s.contains("## Demo"));
        assert!(s.contains("|      name | rate |"), "header right-aligned to widest cell: {s}");
        assert!(s.contains("| long-name |    9 |"));
    }
}
