//! End-to-end daemon test: boot `newtond`, drive it exactly as an
//! operator would — textual intents over the socket — then break the
//! network and watch the repair surface on a subscription stream.

use newtond::json::Value;
use newtond::{Client, Daemon, DaemonConfig, ErrorKind};
use std::time::Duration;

/// The examples/text_intents.rs suite, sent over the wire this time.
const INTENTS: [(&str, &str); 3] = [
    (
        "web_conn_burst",
        "filter(proto == 6) | filter(tcp.flags == 2) | map(dip) \
         | reduce(dip, count) | where >= 40",
    ),
    (
        "port_scanners",
        "filter(proto == 6) | filter(tcp.flags == 2) | map(sip, dport) \
         | distinct(sip, dport) | map(sip) | reduce(sip, count) | where >= 30",
    ),
    ("jumbo_senders", "map(sip) | reduce(sip, max(len)) | where >= 1200"),
];

const TIMEOUT: Duration = Duration::from_secs(60);

fn test_daemon() -> Daemon {
    let cfg = DaemonConfig {
        topology: newton::net::Topology::chain(4),
        register_slots: 4,
        workload: newton::trace::StreamConfig {
            segments: 2,
            segment: newton::trace::background::TraceConfig {
                packets: 4_000,
                duration_ms: 100,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    };
    Daemon::start(cfg, "127.0.0.1:0").expect("bind an ephemeral port")
}

fn u64_field(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or_else(|| panic!("missing u64 {key:?} in {v}"))
}

#[test]
fn daemon_serves_intents_failures_and_reports_over_the_socket() {
    let daemon = test_daemon();
    let addr = daemon.addr().to_string();
    let mut ctl = Client::connect(&addr, TIMEOUT).expect("connect");
    ctl.ping().expect("ping");

    // Install the textual-intent suite over the wire; every install lands
    // in its own register slot with pairwise-distinct offsets.
    let mut ids = Vec::new();
    let mut slots = Vec::new();
    for (name, intent) in INTENTS {
        let r = ctl.install(name, intent).expect("install over the socket");
        ids.push(u64_field(&r, "query") as u32);
        slots.push((u64_field(&r, "slot"), u64_field(&r, "offset")));
    }
    let fourth =
        ctl.install("busy_dsts", "map(dip) | reduce(dip, count) | where >= 1000").expect("4th");
    slots.push((u64_field(&fourth, "slot"), u64_field(&fourth, "offset")));
    for (i, a) in slots.iter().enumerate() {
        for b in &slots[i + 1..] {
            assert_ne!(a.0, b.0, "register slots must be disjoint across live queries");
            assert_ne!(a.1, b.1, "register offsets must be disjoint across live queries");
        }
    }

    // The 5th install must round-trip the allocator error as a structured
    // response — the daemon stays up, nothing panics.
    let err = ctl
        .install("one_too_many", "map(sip) | reduce(sip, count) | where >= 10")
        .expect_err("5th install on 4 slots");
    assert!(err.is_kind(ErrorKind::SlotsExhausted), "got {err}");
    ctl.ping().expect("daemon alive after a rejected install");

    // Broken intents are rejected at the right layer.
    let err = ctl.install("broken", "scan(everything!!)").expect_err("parse error");
    assert!(err.is_kind(ErrorKind::Parse), "got {err}");
    let err = ctl
        .install("invalid", "filter(proto == 999) | map(sip) | reduce(sip, count) | where >= 1")
        .expect_err("validation error");
    assert!(err.is_kind(ErrorKind::Validate), "got {err}");
    let err = ctl.retune(9999, 10).expect_err("retune of an unknown id");
    assert!(err.is_kind(ErrorKind::UnknownQuery), "got {err}");
    let err =
        ctl.retune(ids[0], u64::from(u32::MAX) + 1).expect_err("retune beyond the register range");
    assert!(err.is_kind(ErrorKind::ThresholdOutOfRange), "got {err}");
    ctl.retune(ids[0], 35).expect("an in-range retune still lands");

    // Removing a query frees its slot for the next install.
    let freed = slots[1];
    ctl.remove(ids[1]).expect("remove");
    let again =
        ctl.install("retry", "map(sip) | reduce(sip, count) | where >= 10").expect("freed slot");
    assert_eq!(
        (u64_field(&again, "slot"), u64_field(&again, "offset")),
        freed,
        "the freed slot is the one reused"
    );

    // Second connection: a journal subscriber (sees events from here on).
    let mut sub = Client::connect(&addr, TIMEOUT)
        .expect("subscriber connect")
        .subscribe()
        .expect("subscribe");

    // Fail an edge switch: placement starts at the edges, so it holds
    // rules and the crash is a state-loss event; restore + repair then
    // re-places the lost slices. Both surface on the stream.
    let outcome = ctl.fail_switch(0).expect("inject failure");
    assert_eq!(u64_field(&outcome, "fired"), 1);
    assert_eq!(u64_field(&outcome, "state_loss"), 1, "edge switch held rules");
    let loss = sub
        .wait_for(|e| e.get("type").and_then(Value::as_str) == Some("state_loss"))
        .expect("stream readable")
        .expect("stream still open");
    assert!(u64_field(&loss, "switches") >= 1);

    ctl.restore_switch(0).expect("restore (blank)");
    let repair = ctl.repair().expect("repair pass");
    assert_eq!(u64_field(&repair, "examined"), 4, "all live queries examined");
    assert!(
        !repair.get("repaired").unwrap().as_array().unwrap().is_empty(),
        "the blank switch got its slices back: {repair}"
    );
    let streamed = sub
        .wait_for(|e| e.get("type").and_then(Value::as_str) == Some("repair"))
        .expect("stream readable")
        .expect("stream still open");
    assert!(!streamed.get("repaired").unwrap().as_array().unwrap().is_empty());

    // Replay the workload and fetch the summary back.
    let run = ctl.run(None, Some(0x5EED)).expect("run");
    assert!(u64_field(&run, "packets") > 0);
    assert!(u64_field(&run, "epochs") >= 1);
    let report = ctl.report().expect("report");
    assert_eq!(u64_field(&report, "packets"), u64_field(&run, "packets"));
    assert_eq!(u64_field(&report, "messages"), u64_field(&run, "messages"));

    // Concurrent clients: each gets coherent responses on its own
    // connection while the main one keeps working.
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr, TIMEOUT).expect("worker connect");
                for _ in 0..10 {
                    let list = c.list().expect("list");
                    assert_eq!(u64_field(&list, "slots"), 4);
                    assert_eq!(u64_field(&list, "in_use"), 4);
                    c.ping().expect("ping");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker clean");
    }

    // Clean shutdown: the subscription stream ends, the daemon joins.
    ctl.shutdown().expect("shutdown acknowledged");
    while let Some(_event) = sub.next_event().expect("stream drains") {}
    daemon.join();
}

/// `v["counters"]["name"]` (or gauges/histograms member) as u64.
fn metric(v: &Value, family: &str, name: &str) -> u64 {
    v.get(family)
        .and_then(|f| f.get(name))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing {family}.{name} in metrics snapshot"))
}

#[test]
fn metrics_op_serves_request_histograms_and_prometheus_text() {
    let daemon = test_daemon();
    let addr = daemon.addr().to_string();
    let mut ctl = Client::connect(&addr, TIMEOUT).expect("connect");

    // A known request sequence: exactly 7 pings and 1 install before the
    // scrape, so the per-op histogram counts are fully determined.
    for _ in 0..7 {
        ctl.ping().expect("ping");
    }
    ctl.install(INTENTS[0].0, INTENTS[0].1).expect("install");

    let m = ctl.metrics().expect("metrics snapshot");
    let ping =
        m.get("histograms").and_then(|h| h.get("daemon_request_ns_ping")).expect("ping hist");
    assert_eq!(u64_field(ping, "count"), 7, "one observation per ping");
    let (p50, p90, p99, max) = (
        u64_field(ping, "p50"),
        u64_field(ping, "p90"),
        u64_field(ping, "p99"),
        u64_field(ping, "max"),
    );
    assert!(p50 <= p90 && p90 <= p99 && p99 <= max, "quantiles ordered: {p50} {p90} {p99} {max}");
    assert!(max > 0, "a request takes measurable wall-clock");
    assert!(u64_field(ping, "sum") >= max, "sum dominates the max observation");
    let wire =
        m.get("histograms").and_then(|h| h.get("daemon_request_ns_install")).expect("install op");
    assert_eq!(u64_field(wire, "count"), 1, "one observation per install request");
    let install =
        m.get("histograms").and_then(|h| h.get("controller_install_ns")).expect("install hist");
    assert_eq!(u64_field(install, "count"), 1, "the system layer timed the one install");
    assert!(metric(&m, "gauges", "daemon_active_connections") >= 1, "this connection is live");
    assert!(
        metric(&m, "counters", "compile_cache_misses_total") >= 1,
        "the install compiled something"
    );

    // The same registry in the Prometheus text format: HELP/TYPE pairs,
    // cumulative buckets, and a _count that matches the JSON view.
    let text = ctl.metrics_prometheus().expect("prometheus text");
    assert!(text.contains("# HELP daemon_request_ns_ping "), "HELP line present");
    assert!(text.contains("# TYPE daemon_request_ns_ping histogram"), "TYPE line present");
    assert!(text.contains("daemon_request_ns_ping_bucket{le=\"+Inf\"} 7"), "+Inf bucket == count");
    assert!(text.contains("daemon_request_ns_ping_count 7"), "_count == 7");
    assert!(text.contains("# TYPE daemon_active_connections gauge"), "gauges render");
    assert!(text.contains("# TYPE compile_cache_misses_total counter"), "counters render");

    // A run feeds the report op's controller accounting (cache/channel
    // ride along in the result) and the peak-RSS gauge.
    ctl.run(Some(1), Some(7)).expect("run");
    let report = ctl.report().expect("report");
    let cache = report.get("cache").expect("cache stats in report");
    assert!(u64_field(cache, "misses") >= 1);
    let channel = report.get("channel").expect("channel stats in report");
    assert!(u64_field(channel, "rules_installed") >= 1);
    assert!(u64_field(channel, "bytes") > 0);
    let m = ctl.metrics().expect("metrics after run");
    assert_eq!(
        metric(&m, "counters", "channel_bytes_total"),
        u64_field(channel, "bytes"),
        "the live mirror equals the report's controller accounting"
    );
    let rss = metric(&m, "gauges", "process_peak_rss_bytes");
    if newton::metrics::peak_rss_bytes() > 0 {
        assert!(rss > 1 << 20, "peak RSS {rss} implausibly small for a live process");
    }

    ctl.shutdown().expect("shutdown");
    daemon.join();
}

#[test]
fn slow_subscribers_are_truncated_while_fast_ones_stay_lossless() {
    // Small, epoch-dense runs: ~280 journal events per run, far under the
    // 2048-line subscriber buffer, so a subscriber whose connection
    // thread is alive never comes close to the drop bound — only a
    // genuinely wedged one (socket unread until the kernel buffers fill
    // and its connection thread blocks mid-write) accumulates backlog
    // across flushes and starts losing events.
    let cfg = DaemonConfig {
        topology: newton::net::Topology::chain(4),
        register_slots: 4,
        epoch_ms: 10,
        workload: newton::trace::StreamConfig {
            segments: 1,
            segment: newton::trace::background::TraceConfig {
                packets: 800,
                duration_ms: 100,
                ..Default::default()
            },
            ..Default::default()
        },
        subscriber_buffer: 2048,
        ..Default::default()
    };
    let daemon = Daemon::start(cfg, "127.0.0.1:0").expect("bind");
    let addr = daemon.addr().to_string();
    let mut ctl = Client::connect(&addr, TIMEOUT).expect("connect");

    // Both subscribers attach before the first journal event, so every
    // event ever flushed was addressed to both.
    let fast = Client::connect(&addr, TIMEOUT).expect("fast connect").subscribe().expect("fast");
    let mut slow =
        Client::connect(&addr, TIMEOUT).expect("slow connect").subscribe().expect("slow");

    // The fast subscriber drains continuously on its own thread and must
    // never observe a truncation marker.
    let fast_drain = std::thread::spawn(move || {
        let mut fast = fast;
        let mut events = 0u64;
        loop {
            match fast.next_item().expect("fast stream readable") {
                Some(newtond::StreamItem::Event(_)) => events += 1,
                Some(newtond::StreamItem::Truncated(n)) => {
                    panic!("fast subscriber lost {n} events")
                }
                None => return events,
            }
        }
    });

    ctl.install(INTENTS[0].0, INTENTS[0].1).expect("install");

    // Replay until the wedged subscriber's socket path fills and the core
    // starts dropping for it (visible in the live counter). The kernel's
    // loopback buffers absorb a bounded amount, so this terminates; the
    // bail-out only fires if flow control is broken.
    let mut dropped = 0u64;
    for seed in 0..200u64 {
        ctl.run(None, Some(seed)).expect("run");
        let m = ctl.metrics().expect("metrics");
        dropped = metric(&m, "counters", "daemon_subscriber_dropped_events_total");
        if dropped > 0 {
            break;
        }
    }
    assert!(dropped > 0, "200 runs never overflowed the wedged subscriber");

    // The slow subscriber wakes up and drains; once its backlog falls
    // under the buffer again, the next flush owes it a truncation marker
    // before any further event.
    let slow_drain = std::thread::spawn(move || {
        let mut events = 0u64;
        let mut truncated = 0u64;
        let mut markers = 0u64;
        loop {
            match slow.next_item().expect("slow stream readable") {
                Some(newtond::StreamItem::Event(_)) => events += 1,
                Some(newtond::StreamItem::Truncated(n)) => {
                    truncated += n;
                    markers += 1;
                }
                None => return (events, truncated, markers),
            }
        }
    });
    // Give the drain a moment to catch up, then flush fresh events so the
    // marker has a ride.
    std::thread::sleep(Duration::from_millis(500));
    ctl.run(None, Some(9_000)).expect("post-catch-up run");

    let m = ctl.metrics().expect("final metrics");
    let total = metric(&m, "counters", "daemon_journal_events_total");
    let dropped = metric(&m, "counters", "daemon_subscriber_dropped_events_total");
    assert!(
        metric(&m, "gauges", "daemon_subscriber_max_lag_events") >= 2048,
        "the wedged subscriber's backlog high-water mark reached the buffer bound"
    );
    ctl.shutdown().expect("shutdown");

    let fast_events = fast_drain.join().expect("fast drain clean");
    let (slow_events, slow_truncated, slow_markers) = slow_drain.join().expect("slow drain clean");
    assert_eq!(fast_events, total, "the fast subscriber got every flushed event");
    assert!(slow_markers >= 1, "the slow subscriber saw a truncation marker");
    assert_eq!(
        slow_events + slow_truncated,
        total,
        "every event was either delivered or accounted to a marker"
    );
    assert_eq!(slow_truncated, dropped, "markers account exactly the counted drops");
    daemon.join();
}

#[test]
fn update_round_trips_structured_errors_and_keeps_ids_stable() {
    let daemon = test_daemon();
    let addr = daemon.addr().to_string();
    let mut ctl = Client::connect(&addr, TIMEOUT).expect("connect");

    let err = ctl
        .update(7, "ghost", "map(sip) | reduce(sip, count) | where >= 5")
        .expect_err("updating a never-installed id");
    assert!(err.is_kind(ErrorKind::UnknownQuery), "got {err}");

    let installed = ctl.install(INTENTS[0].0, INTENTS[0].1).expect("install");
    let id = u64_field(&installed, "query") as u32;
    let updated =
        ctl.update(id, "web_conn_burst_v2", INTENTS[1].1).expect("in-place update over the socket");
    assert_eq!(u64_field(&updated, "query"), u64::from(id), "update keeps the id");
    assert_eq!(
        u64_field(&updated, "slot"),
        u64_field(&installed, "slot"),
        "update keeps the register slot"
    );

    let list = ctl.list().expect("list");
    let queries = list.get("queries").unwrap().as_array().unwrap();
    assert_eq!(queries.len(), 1);
    assert_eq!(queries[0].get("name").unwrap().as_str(), Some("web_conn_burst_v2"));

    ctl.shutdown().expect("shutdown");
    daemon.join();
}
