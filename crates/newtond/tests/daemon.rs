//! End-to-end daemon test: boot `newtond`, drive it exactly as an
//! operator would — textual intents over the socket — then break the
//! network and watch the repair surface on a subscription stream.

use newtond::json::Value;
use newtond::{Client, Daemon, DaemonConfig, ErrorKind};
use std::time::Duration;

/// The examples/text_intents.rs suite, sent over the wire this time.
const INTENTS: [(&str, &str); 3] = [
    (
        "web_conn_burst",
        "filter(proto == 6) | filter(tcp.flags == 2) | map(dip) \
         | reduce(dip, count) | where >= 40",
    ),
    (
        "port_scanners",
        "filter(proto == 6) | filter(tcp.flags == 2) | map(sip, dport) \
         | distinct(sip, dport) | map(sip) | reduce(sip, count) | where >= 30",
    ),
    ("jumbo_senders", "map(sip) | reduce(sip, max(len)) | where >= 1200"),
];

const TIMEOUT: Duration = Duration::from_secs(60);

fn test_daemon() -> Daemon {
    let cfg = DaemonConfig {
        topology: newton::net::Topology::chain(4),
        register_slots: 4,
        workload: newton::trace::StreamConfig {
            segments: 2,
            segment: newton::trace::background::TraceConfig {
                packets: 4_000,
                duration_ms: 100,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    };
    Daemon::start(cfg, "127.0.0.1:0").expect("bind an ephemeral port")
}

fn u64_field(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or_else(|| panic!("missing u64 {key:?} in {v}"))
}

#[test]
fn daemon_serves_intents_failures_and_reports_over_the_socket() {
    let daemon = test_daemon();
    let addr = daemon.addr().to_string();
    let mut ctl = Client::connect(&addr, TIMEOUT).expect("connect");
    ctl.ping().expect("ping");

    // Install the textual-intent suite over the wire; every install lands
    // in its own register slot with pairwise-distinct offsets.
    let mut ids = Vec::new();
    let mut slots = Vec::new();
    for (name, intent) in INTENTS {
        let r = ctl.install(name, intent).expect("install over the socket");
        ids.push(u64_field(&r, "query") as u32);
        slots.push((u64_field(&r, "slot"), u64_field(&r, "offset")));
    }
    let fourth =
        ctl.install("busy_dsts", "map(dip) | reduce(dip, count) | where >= 1000").expect("4th");
    slots.push((u64_field(&fourth, "slot"), u64_field(&fourth, "offset")));
    for (i, a) in slots.iter().enumerate() {
        for b in &slots[i + 1..] {
            assert_ne!(a.0, b.0, "register slots must be disjoint across live queries");
            assert_ne!(a.1, b.1, "register offsets must be disjoint across live queries");
        }
    }

    // The 5th install must round-trip the allocator error as a structured
    // response — the daemon stays up, nothing panics.
    let err = ctl
        .install("one_too_many", "map(sip) | reduce(sip, count) | where >= 10")
        .expect_err("5th install on 4 slots");
    assert!(err.is_kind(ErrorKind::SlotsExhausted), "got {err}");
    ctl.ping().expect("daemon alive after a rejected install");

    // Broken intents are rejected at the right layer.
    let err = ctl.install("broken", "scan(everything!!)").expect_err("parse error");
    assert!(err.is_kind(ErrorKind::Parse), "got {err}");
    let err = ctl
        .install("invalid", "filter(proto == 999) | map(sip) | reduce(sip, count) | where >= 1")
        .expect_err("validation error");
    assert!(err.is_kind(ErrorKind::Validate), "got {err}");
    let err = ctl.retune(9999, 10).expect_err("retune of an unknown id");
    assert!(err.is_kind(ErrorKind::UnknownQuery), "got {err}");
    let err =
        ctl.retune(ids[0], u64::from(u32::MAX) + 1).expect_err("retune beyond the register range");
    assert!(err.is_kind(ErrorKind::ThresholdOutOfRange), "got {err}");
    ctl.retune(ids[0], 35).expect("an in-range retune still lands");

    // Removing a query frees its slot for the next install.
    let freed = slots[1];
    ctl.remove(ids[1]).expect("remove");
    let again =
        ctl.install("retry", "map(sip) | reduce(sip, count) | where >= 10").expect("freed slot");
    assert_eq!(
        (u64_field(&again, "slot"), u64_field(&again, "offset")),
        freed,
        "the freed slot is the one reused"
    );

    // Second connection: a journal subscriber (sees events from here on).
    let mut sub = Client::connect(&addr, TIMEOUT)
        .expect("subscriber connect")
        .subscribe()
        .expect("subscribe");

    // Fail an edge switch: placement starts at the edges, so it holds
    // rules and the crash is a state-loss event; restore + repair then
    // re-places the lost slices. Both surface on the stream.
    let outcome = ctl.fail_switch(0).expect("inject failure");
    assert_eq!(u64_field(&outcome, "fired"), 1);
    assert_eq!(u64_field(&outcome, "state_loss"), 1, "edge switch held rules");
    let loss = sub
        .wait_for(|e| e.get("type").and_then(Value::as_str) == Some("state_loss"))
        .expect("stream readable")
        .expect("stream still open");
    assert!(u64_field(&loss, "switches") >= 1);

    ctl.restore_switch(0).expect("restore (blank)");
    let repair = ctl.repair().expect("repair pass");
    assert_eq!(u64_field(&repair, "examined"), 4, "all live queries examined");
    assert!(
        !repair.get("repaired").unwrap().as_array().unwrap().is_empty(),
        "the blank switch got its slices back: {repair}"
    );
    let streamed = sub
        .wait_for(|e| e.get("type").and_then(Value::as_str) == Some("repair"))
        .expect("stream readable")
        .expect("stream still open");
    assert!(!streamed.get("repaired").unwrap().as_array().unwrap().is_empty());

    // Replay the workload and fetch the summary back.
    let run = ctl.run(None, Some(0x5EED)).expect("run");
    assert!(u64_field(&run, "packets") > 0);
    assert!(u64_field(&run, "epochs") >= 1);
    let report = ctl.report().expect("report");
    assert_eq!(u64_field(&report, "packets"), u64_field(&run, "packets"));
    assert_eq!(u64_field(&report, "messages"), u64_field(&run, "messages"));

    // Concurrent clients: each gets coherent responses on its own
    // connection while the main one keeps working.
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr, TIMEOUT).expect("worker connect");
                for _ in 0..10 {
                    let list = c.list().expect("list");
                    assert_eq!(u64_field(&list, "slots"), 4);
                    assert_eq!(u64_field(&list, "in_use"), 4);
                    c.ping().expect("ping");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker clean");
    }

    // Clean shutdown: the subscription stream ends, the daemon joins.
    ctl.shutdown().expect("shutdown acknowledged");
    while let Some(_event) = sub.next_event().expect("stream drains") {}
    daemon.join();
}

#[test]
fn update_round_trips_structured_errors_and_keeps_ids_stable() {
    let daemon = test_daemon();
    let addr = daemon.addr().to_string();
    let mut ctl = Client::connect(&addr, TIMEOUT).expect("connect");

    let err = ctl
        .update(7, "ghost", "map(sip) | reduce(sip, count) | where >= 5")
        .expect_err("updating a never-installed id");
    assert!(err.is_kind(ErrorKind::UnknownQuery), "got {err}");

    let installed = ctl.install(INTENTS[0].0, INTENTS[0].1).expect("install");
    let id = u64_field(&installed, "query") as u32;
    let updated =
        ctl.update(id, "web_conn_burst_v2", INTENTS[1].1).expect("in-place update over the socket");
    assert_eq!(u64_field(&updated, "query"), u64::from(id), "update keeps the id");
    assert_eq!(
        u64_field(&updated, "slot"),
        u64_field(&installed, "slot"),
        "update keeps the register slot"
    );

    let list = ctl.list().expect("list");
    let queries = list.get("queries").unwrap().as_array().unwrap();
    assert_eq!(queries.len(), 1);
    assert_eq!(queries[0].get("name").unwrap().as_str(), Some("web_conn_burst_v2"));

    ctl.shutdown().expect("shutdown");
    daemon.join();
}
