//! The resident controller service.
//!
//! One **core thread** owns the [`NewtonSystem`] and serializes every
//! operation; one **acceptor thread** takes TCP connections and spawns a
//! thread per client. Connection threads never touch the system: they
//! decode request lines, forward them over an mpsc channel, and write
//! back whatever line the core sends — so N concurrent clients get
//! interleaving at request granularity, never mid-pipeline (the
//! compile → place → install transaction stays atomic per request).
//!
//! Subscribers are connection threads that traded their request loop for
//! a one-way stream: the core pushes every new telemetry journal event to
//! them as it is recorded (installs, removes, repairs, state loss, epoch
//! summaries during `run`). The journal is flushed incrementally and
//! truncated once drained, so a long-lived daemon holds O(subscriber
//! backlog) telemetry, not O(lifetime).

use crate::proto::{self, ErrorKind, Op, Request};
use crate::{json, json::Value};
use newton::compiler::CompilerConfig;
use newton::controller::{InstallError, InstallReceipt, RepairOutcome, RetuneError, UpdateError};
use newton::dataplane::PipelineConfig;
use newton::metrics::{self, Counter, Gauge, MaxGauge, MetricsRegistry};
use newton::net::Topology;
use newton::query::{parse_query, validate};
use newton::telemetry::QueryId;
use newton::trace::{ReplayOptions, StreamConfig};
use newton::{NewtonSystem, RunReport};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Journal events kept buffered after the last subscriber flush before
/// the core truncates the journal (bounds daemon memory on long
/// lifetimes).
const JOURNAL_TRUNCATE_AT: usize = 4096;

/// Everything the daemon needs to build and drive its system.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    pub topology: Topology,
    /// Concurrent-query register slots (§4.1): the N+1th install fails
    /// with a structured `slots_exhausted` error.
    pub register_slots: u32,
    pub stages_per_switch: usize,
    /// Epoch window for `run` replays.
    pub epoch_ms: u64,
    /// The workload template `run` replays (bounded-memory streaming;
    /// `segments`/`seed` are overridable per request).
    pub workload: StreamConfig,
    pub replay: ReplayOptions,
    /// Journal-stream lines a subscriber may have in flight (queued
    /// behind its socket) before the core drops events for it instead of
    /// buffering without bound. Dropped spans surface in-stream as a
    /// `{"stream":"journal","truncated":<n>}` marker once the subscriber
    /// catches up, and in `daemon_subscriber_dropped_events_total`.
    pub subscriber_buffer: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            topology: Topology::chain(4),
            register_slots: 8,
            stages_per_switch: 12,
            epoch_ms: 100,
            workload: StreamConfig::default(),
            replay: ReplayOptions::default(),
            subscriber_buffer: JOURNAL_TRUNCATE_AT,
        }
    }
}

/// One in-flight client request, as the core thread sees it.
enum Cmd {
    Request {
        req: Request,
        /// Where the response line goes (the connection's outbox).
        reply: Sender<String>,
        /// Present on `subscribe`: the same outbox, to be retained by the
        /// core as a journal stream sink, plus the connection's in-flight
        /// line counter (the core increments per line queued, the
        /// connection thread decrements per line written to the socket —
        /// the backpressure signal behind bounded subscriber buffering).
        stream: Option<(Sender<String>, Arc<AtomicUsize>)>,
        /// Present on `shutdown`: fires once the connection thread has
        /// flushed the response to the socket, so the core does not tear
        /// the process down underneath the final write.
        fence: Option<Receiver<()>>,
    },
}

/// A running daemon. Dropping the handle does NOT stop it; send a
/// `shutdown` request (or use [`Client::shutdown`](crate::Client)) and
/// then [`join`](Daemon::join).
pub struct Daemon {
    addr: SocketAddr,
    core: JoinHandle<()>,
    acceptor: JoinHandle<()>,
}

impl Daemon {
    /// Bind `addr` (use port 0 for an OS-assigned port) and start serving.
    pub fn start(cfg: DaemonConfig, addr: &str) -> io::Result<Daemon> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stopping = Arc::new(AtomicBool::new(false));
        let (tx, rx) = channel::<Cmd>();
        // One registry for the daemon's lifetime: the core thread feeds
        // the system/controller/executor families into it, connection
        // threads feed the connection gauge, and the `metrics` op scrapes
        // it. Created here (not in the core) because the acceptor needs
        // the connection gauge before the core thread runs.
        let registry = MetricsRegistry::new();
        let connections =
            registry.gauge("daemon_active_connections", "Open client connections right now");

        let core = {
            let stopping = Arc::clone(&stopping);
            let registry = registry.clone();
            thread::Builder::new()
                .name("newtond-core".into())
                .spawn(move || core_loop(cfg, rx, stopping, addr, registry))?
        };
        let acceptor = {
            let stopping = Arc::clone(&stopping);
            thread::Builder::new().name("newtond-accept".into()).spawn(move || {
                for conn in listener.incoming() {
                    if stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(sock) = conn else { continue };
                    let tx = tx.clone();
                    let gauge = connections.clone();
                    let _ = thread::Builder::new()
                        .name("newtond-conn".into())
                        .spawn(move || serve_connection(sock, tx, gauge));
                }
            })?
        };
        Ok(Daemon { addr, core, acceptor })
    }

    /// The bound address (read the OS-assigned port here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wait for the daemon to stop (it stops on a `shutdown` request).
    pub fn join(self) {
        let _ = self.core.join();
        let _ = self.acceptor.join();
    }
}

/// Decrements the connection gauge however its thread exits.
struct ConnGuard(Gauge);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.sub(1);
    }
}

/// Per-connection loop: decode lines, round-trip them through the core.
/// On `subscribe` the same outbox channel becomes the event stream and
/// this thread degenerates into a forwarding pump.
fn serve_connection(sock: TcpStream, tx: Sender<Cmd>, connections: Gauge) {
    connections.add(1);
    let _guard = ConnGuard(connections);
    let Ok(read_half) = sock.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(sock);
    let (outbox, inbox) = channel::<String>();
    let pending = Arc::new(AtomicUsize::new(0));
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // client closed
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let req = match proto::parse_request(trimmed) {
            Ok(req) => req,
            Err(bad) => {
                let resp = proto::err_line(bad.id, ErrorKind::BadRequest, &bad.detail);
                if write_line(&mut writer, &resp).is_err() {
                    return;
                }
                continue;
            }
        };
        let subscribing = req.op == Op::Subscribe;
        let mut fence_tx = None;
        let fence = (req.op == Op::Shutdown).then(|| {
            let (ftx, frx) = channel::<()>();
            fence_tx = Some(ftx);
            frx
        });
        let cmd = Cmd::Request {
            req,
            reply: outbox.clone(),
            stream: subscribing.then(|| (outbox.clone(), Arc::clone(&pending))),
            fence,
        };
        if tx.send(cmd).is_err() {
            return; // daemon stopping
        }
        let Ok(resp) = inbox.recv() else { return };
        if write_line(&mut writer, &resp).is_err() {
            return;
        }
        if let Some(ftx) = fence_tx {
            let _ = ftx.send(());
            return; // daemon is coming down
        }
        if subscribing {
            // One-way from here: forward journal events until the core
            // drops our sender (shutdown) or the client disconnects. Our
            // own outbox handle must go first, or recv() never
            // disconnects — the core's retained clone is the only sender
            // that should keep the stream open.
            drop(outbox);
            while let Ok(event_line) = inbox.recv() {
                let wrote = write_line(&mut writer, &event_line);
                // Decrement only after the socket write: a slow client
                // keeps its backlog visible to the core until the bytes
                // actually leave, which is what the drop bound measures.
                pending.fetch_sub(1, Ordering::Relaxed);
                if wrote.is_err() {
                    return;
                }
            }
            return;
        }
    }
}

fn write_line(w: &mut BufWriter<TcpStream>, line: &str) -> io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// One retained journal-stream sink with its flow-control state.
struct Subscriber {
    sink: Sender<String>,
    /// Lines queued to this connection but not yet written to its socket.
    pending: Arc<AtomicUsize>,
    /// Events dropped since the last truncation marker was delivered.
    truncated: u64,
}

/// The daemon's own instruments (the system/controller/executor families
/// register themselves through [`NewtonSystem::enable_metrics`]).
struct DaemonMetrics {
    journal_events: Counter,
    subscribers: Gauge,
    dropped_events: Counter,
    max_lag: MaxGauge,
    peak_rss: MaxGauge,
}

impl DaemonMetrics {
    fn register(reg: &MetricsRegistry) -> DaemonMetrics {
        DaemonMetrics {
            journal_events: reg
                .counter("daemon_journal_events_total", "Journal events flushed to the stream"),
            subscribers: reg.gauge("daemon_subscribers", "Live journal-stream subscribers"),
            dropped_events: reg.counter(
                "daemon_subscriber_dropped_events_total",
                "Journal events dropped because a subscriber exceeded its buffer",
            ),
            max_lag: reg.max_gauge(
                "daemon_subscriber_max_lag_events",
                "High-water mark of any subscriber's in-flight line backlog",
            ),
            peak_rss: reg
                .max_gauge("process_peak_rss_bytes", "Peak resident set size of the daemon"),
        }
    }
}

/// The state the core thread threads through requests.
struct Core {
    sys: NewtonSystem,
    cfg: DaemonConfig,
    /// Journal index of the first event not yet pushed to subscribers.
    flushed: usize,
    subscribers: Vec<Subscriber>,
    last_report: Option<RunReport>,
    runs: u64,
    registry: MetricsRegistry,
    dm: DaemonMetrics,
}

/// The `daemon_request_ns_*` histogram family key for an op.
fn op_kind(op: &Op) -> &'static str {
    match op {
        Op::Ping => "ping",
        Op::Install { .. } => "install",
        Op::Update { .. } => "update",
        Op::Remove { .. } => "remove",
        Op::Retune { .. } => "retune",
        Op::List => "list",
        Op::Inject { .. } => "inject",
        Op::Repair => "repair",
        Op::Run { .. } => "run",
        Op::Report => "report",
        Op::Metrics { .. } => "metrics",
        Op::Subscribe => "subscribe",
        Op::Shutdown => "shutdown",
    }
}

fn core_loop(
    cfg: DaemonConfig,
    rx: Receiver<Cmd>,
    stopping: Arc<AtomicBool>,
    addr: SocketAddr,
    registry: MetricsRegistry,
) {
    let mut sys = NewtonSystem::with_config_slots(
        cfg.topology.clone(),
        PipelineConfig::default(),
        CompilerConfig::default(),
        cfg.stages_per_switch,
        cfg.register_slots,
    );
    sys.enable_recorder();
    sys.enable_metrics(&registry);
    let dm = DaemonMetrics::register(&registry);
    let mut core = Core {
        sys,
        cfg,
        flushed: 0,
        subscribers: Vec::new(),
        last_report: None,
        runs: 0,
        registry,
        dm,
    };

    while let Ok(Cmd::Request { req, reply, stream, fence }) = rx.recv() {
        let shutdown = req.op == Op::Shutdown;
        let started = Instant::now();
        let resp = match req.op {
            Op::Subscribe => {
                if let Some((sink, pending)) = stream {
                    core.subscribers.push(Subscriber { sink, pending, truncated: 0 });
                    core.dm.subscribers.add(1);
                }
                proto::ok_line(req.id, json::obj(vec![("subscribed", Value::Bool(true))]))
            }
            _ => match handle(&mut core, &req.op) {
                Ok(result) => proto::ok_line(req.id, result),
                Err((kind, detail)) => proto::err_line(req.id, kind, &detail),
            },
        };
        // Per-op request latency (registration is idempotent, so looking
        // the histogram up by name each time shares one storage cell).
        core.registry
            .histogram(
                &format!("daemon_request_ns_{}", op_kind(&req.op)),
                "Wall-clock nanoseconds handling one request in the core thread",
            )
            .observe(started.elapsed().as_nanos() as u64);
        let _ = reply.send(resp);
        flush_journal(&mut core);
        if shutdown {
            // Wait (bounded) for the requester's connection thread to
            // flush the acknowledgement before tearing everything down.
            if let Some(fence) = fence {
                let _ = fence.recv_timeout(std::time::Duration::from_secs(5));
            }
            break;
        }
    }

    // Closing the subscriber senders ends every stream connection; the
    // dummy connect unblocks the acceptor so it can observe the flag.
    stopping.store(true, Ordering::SeqCst);
    core.subscribers.clear();
    let _ = TcpStream::connect(addr);
}

/// Push journal events recorded since the last flush to every subscriber,
/// dropping subscribers whose connection has gone away, then truncate the
/// journal once the backlog exceeds [`JOURNAL_TRUNCATE_AT`].
///
/// Per subscriber the push is *bounded*: once its in-flight backlog
/// reaches [`DaemonConfig::subscriber_buffer`] lines, further events are
/// dropped for it (counted, and reported in-stream as a truncation
/// marker when it catches up) instead of queueing without bound — one
/// wedged client can no longer grow the daemon's memory or stall the
/// stream for everyone else.
fn flush_journal(core: &mut Core) {
    let Some(rec) = core.sys.recorder() else { return };
    let events = rec.journal.events();
    if core.flushed < events.len() {
        let lines: Vec<String> =
            events[core.flushed..].iter().map(|e| proto::stream_line(&e.to_json())).collect();
        core.flushed = events.len();
        core.dm.journal_events.add(lines.len() as u64);
        let limit = core.cfg.subscriber_buffer.max(1);
        let dm = &core.dm;
        let before = core.subscribers.len();
        core.subscribers.retain_mut(|sub| {
            for l in &lines {
                let backlog = sub.pending.load(Ordering::Relaxed);
                dm.max_lag.observe(backlog as u64);
                if sub.truncated > 0 && backlog < limit {
                    // Caught up: tell the subscriber what it missed,
                    // before the next event it does receive.
                    if sub.sink.send(proto::truncated_line(sub.truncated)).is_err() {
                        return false;
                    }
                    sub.pending.fetch_add(1, Ordering::Relaxed);
                    sub.truncated = 0;
                }
                if sub.pending.load(Ordering::Relaxed) >= limit {
                    sub.truncated += 1;
                    dm.dropped_events.inc();
                    continue;
                }
                if sub.sink.send(l.clone()).is_err() {
                    return false;
                }
                sub.pending.fetch_add(1, Ordering::Relaxed);
            }
            true
        });
        core.dm.subscribers.sub((before - core.subscribers.len()) as u64);
    }
    if core.flushed >= JOURNAL_TRUNCATE_AT {
        core.sys.enable_recorder().journal.clear();
        core.flushed = 0;
    }
}

type OpError = (ErrorKind, String);

fn handle(core: &mut Core, op: &Op) -> Result<Value, OpError> {
    match op {
        Op::Ping => Ok(json::obj(vec![("pong", Value::Bool(true))])),
        Op::Install { name, intent } => {
            let query = compile_intent(name, intent)?;
            let receipt = core.sys.install(&query).map_err(install_error)?;
            Ok(receipt_result(core, &receipt, name))
        }
        Op::Update { query: id, name, intent } => {
            let query = compile_intent(name, intent)?;
            let receipt = core.sys.update(*id, &query).map_err(update_error)?;
            Ok(receipt_result(core, &receipt, name))
        }
        Op::Remove { query: id } => {
            let receipt = core
                .sys
                .remove(*id)
                .ok_or_else(|| (ErrorKind::UnknownQuery, format!("query {id} is not installed")))?;
            Ok(json::obj(vec![
                ("query", json::num(receipt.id)),
                ("rules", json::num(receipt.rules as f64)),
                ("switches", json::num(receipt.switches as f64)),
                ("delay_ms", json::num(receipt.delay_ms)),
            ]))
        }
        Op::Retune { query: id, threshold } => {
            let receipt = core.sys.retune_threshold(*id, *threshold).map_err(|e| match e {
                RetuneError::UnknownQuery(_) => (ErrorKind::UnknownQuery, e.to_string()),
                RetuneError::ThresholdOutOfRange { .. } => {
                    (ErrorKind::ThresholdOutOfRange, e.to_string())
                }
            })?;
            Ok(json::obj(vec![
                ("query", json::num(receipt.id)),
                ("rules", json::num(receipt.rules as f64)),
                ("delay_ms", json::num(receipt.delay_ms)),
            ]))
        }
        Op::List => Ok(list_result(core)),
        Op::Inject { event } => {
            let outcome = core.sys.inject_event(*event);
            Ok(json::obj(vec![
                ("fired", json::num(outcome.fired as f64)),
                ("state_loss", json::num(outcome.state_loss as f64)),
            ]))
        }
        Op::Repair => {
            let outcome = core.sys.repair_now();
            Ok(repair_result(&outcome))
        }
        Op::Run { segments, seed } => {
            let mut workload = core.cfg.workload.clone();
            if let Some(n) = segments {
                workload.segments = *n;
            }
            // Unseeded runs draw fresh (but reproducible) traffic: the
            // run ordinal perturbs the template seed.
            workload.seed = seed.unwrap_or(workload.seed.wrapping_add(core.runs));
            let epoch_ms = core.cfg.epoch_ms;
            let replay = core.cfg.replay;
            let report = core.sys.run_stream(&workload, epoch_ms, &replay);
            core.runs += 1;
            core.dm.peak_rss.observe(metrics::peak_rss_bytes());
            let result = report_result(core, &report, core.runs - 1);
            core.last_report = Some(report);
            Ok(result)
        }
        Op::Report => {
            let report = core
                .last_report
                .take()
                .ok_or_else(|| (ErrorKind::Unavailable, "no run has completed yet".to_string()))?;
            let result = report_result(core, &report, core.runs.saturating_sub(1));
            core.last_report = Some(report);
            Ok(result)
        }
        Op::Metrics { prometheus } => {
            core.dm.peak_rss.observe(metrics::peak_rss_bytes());
            if *prometheus {
                Ok(json::obj(vec![("prometheus", json::str(core.registry.render_prometheus()))]))
            } else {
                json::parse(&core.registry.render_json()).map_err(|e| {
                    (ErrorKind::Unavailable, format!("metrics snapshot unrenderable: {e}"))
                })
            }
        }
        Op::Shutdown => Ok(json::obj(vec![("stopping", Value::Bool(true))])),
        // Subscribe is intercepted by the core loop (it needs the sink).
        Op::Subscribe => unreachable!("subscribe handled by the core loop"),
    }
}

/// Textual intent → validated [`Query`](newton::query::ast::Query).
fn compile_intent(name: &str, intent: &str) -> Result<newton::query::Query, OpError> {
    let query = parse_query(name, intent).map_err(|e| (ErrorKind::Parse, e.to_string()))?;
    let problems = validate(&query);
    if !problems.is_empty() {
        let detail = problems.iter().map(ToString::to_string).collect::<Vec<_>>().join("; ");
        return Err((ErrorKind::Validate, detail));
    }
    Ok(query)
}

fn install_error(e: InstallError) -> OpError {
    match e {
        InstallError::SlotsExhausted { .. } => (ErrorKind::SlotsExhausted, e.to_string()),
        InstallError::Switch(_) => (ErrorKind::Switch, e.to_string()),
    }
}

fn update_error(e: UpdateError) -> OpError {
    match e {
        UpdateError::UnknownQuery(_) => (ErrorKind::UnknownQuery, e.to_string()),
        UpdateError::Rejected { .. } => (ErrorKind::Rejected, e.to_string()),
    }
}

fn receipt_result(core: &Core, receipt: &InstallReceipt, name: &str) -> Value {
    json::obj(vec![
        ("query", json::num(receipt.id)),
        ("name", json::str(name)),
        ("slot", slot_num(core, receipt.id, |s, id| s.register_slot(id))),
        ("offset", slot_num(core, receipt.id, |s, id| s.register_offset(id))),
        ("rules", json::num(receipt.rules as f64)),
        ("switches", json::num(receipt.switches as f64)),
        ("slices", json::num(receipt.slices as f64)),
        ("overflow_slices", json::num(receipt.overflow_slices as f64)),
        ("diff", Value::Bool(receipt.diff)),
        ("delay_ms", json::num(receipt.delay_ms)),
        ("software", Value::Bool(core.sys.runs_in_software(receipt.id))),
    ])
}

fn slot_num(
    core: &Core,
    id: QueryId,
    read: impl Fn(&newton::controller::Controller, QueryId) -> Option<u32>,
) -> Value {
    read(core.sys.controller(), id).map_or(Value::Null, json::num)
}

fn list_result(core: &Core) -> Value {
    let controller = core.sys.controller();
    let mut ids: Vec<QueryId> = controller.installed().keys().copied().collect();
    ids.sort_unstable();
    let queries = ids
        .into_iter()
        .map(|id| {
            let iq = &controller.installed()[&id];
            json::obj(vec![
                ("query", json::num(id)),
                ("name", json::str(iq.query.name.as_str())),
                ("slot", slot_num(core, id, |c, id| c.register_slot(id))),
                ("offset", slot_num(core, id, |c, id| c.register_offset(id))),
                ("slices", json::num(iq.slices.len() as f64)),
                ("software", Value::Bool(core.sys.runs_in_software(id))),
            ])
        })
        .collect();
    json::obj(vec![
        ("slots", json::num(controller.register_slots())),
        ("in_use", json::num(controller.installed().len() as f64)),
        ("queries", Value::Arr(queries)),
    ])
}

fn repair_result(outcome: &RepairOutcome) -> Value {
    let ids = |ids: &[QueryId]| Value::Arr(ids.iter().map(|&id| json::num(id)).collect());
    json::obj(vec![
        ("examined", json::num(outcome.examined as f64)),
        ("repaired", ids(&outcome.repaired)),
        ("degraded", ids(&outcome.degraded)),
        ("rules_installed", json::num(outcome.rules_installed as f64)),
        ("switches_touched", json::num(outcome.switches_touched as f64)),
        ("delay_ms", json::num(outcome.delay_ms)),
    ])
}

fn report_result(core: &Core, report: &RunReport, run: u64) -> Value {
    let mut reported: Vec<(QueryId, usize)> =
        report.reported.iter().map(|(&id, keys)| (id, keys.len())).collect();
    reported.sort_unstable();
    let reported = reported
        .into_iter()
        .map(|(id, keys)| {
            json::obj(vec![("query", json::num(id)), ("keys", json::num(keys as f64))])
        })
        .collect();
    // Controller-side accounting rides along so operators see compile-
    // cache effectiveness and rule-channel traffic without a separate op.
    let cache = core.sys.controller().cache_stats();
    let channel = core.sys.controller().channel_stats();
    json::obj(vec![
        ("run", json::num(run as f64)),
        ("packets", json::num(report.packets as f64)),
        ("messages", json::num(report.messages as f64)),
        ("overhead_ratio", json::num(report.overhead_ratio())),
        ("epochs", json::num(report.epoch_count as f64)),
        ("unrouted", json::num(report.unrouted as f64)),
        ("repairs", json::num(report.repairs as f64)),
        ("repair_delay_ms", json::num(report.repair_delay_ms)),
        ("degraded_query_epochs", json::num(report.degraded_query_epochs as f64)),
        ("state_loss_events", json::num(report.state_loss_events as f64)),
        ("reported", Value::Arr(reported)),
        (
            "cache",
            json::obj(vec![
                ("hits", json::num(cache.hits as f64)),
                ("misses", json::num(cache.misses as f64)),
            ]),
        ),
        (
            "channel",
            json::obj(vec![
                ("rules_installed", json::num(channel.rules_installed as f64)),
                ("rules_removed", json::num(channel.rules_removed as f64)),
                ("rules_modified", json::num(channel.rules_modified as f64)),
                ("messages", json::num(channel.messages as f64)),
                ("bytes", json::num(channel.bytes as f64)),
            ]),
        ),
    ])
}
