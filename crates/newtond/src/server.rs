//! The resident controller service.
//!
//! One **core thread** owns the [`NewtonSystem`] and serializes every
//! operation; one **acceptor thread** takes TCP connections and spawns a
//! thread per client. Connection threads never touch the system: they
//! decode request lines, forward them over an mpsc channel, and write
//! back whatever line the core sends — so N concurrent clients get
//! interleaving at request granularity, never mid-pipeline (the
//! compile → place → install transaction stays atomic per request).
//!
//! Subscribers are connection threads that traded their request loop for
//! a one-way stream: the core pushes every new telemetry journal event to
//! them as it is recorded (installs, removes, repairs, state loss, epoch
//! summaries during `run`). The journal is flushed incrementally and
//! truncated once drained, so a long-lived daemon holds O(subscriber
//! backlog) telemetry, not O(lifetime).

use crate::proto::{self, ErrorKind, Op, Request};
use crate::{json, json::Value};
use newton::compiler::CompilerConfig;
use newton::controller::{InstallError, InstallReceipt, RepairOutcome, RetuneError, UpdateError};
use newton::dataplane::PipelineConfig;
use newton::net::Topology;
use newton::query::{parse_query, validate};
use newton::telemetry::QueryId;
use newton::trace::{ReplayOptions, StreamConfig};
use newton::{NewtonSystem, RunReport};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

/// Journal events kept buffered after the last subscriber flush before
/// the core truncates the journal (bounds daemon memory on long
/// lifetimes).
const JOURNAL_TRUNCATE_AT: usize = 4096;

/// Everything the daemon needs to build and drive its system.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    pub topology: Topology,
    /// Concurrent-query register slots (§4.1): the N+1th install fails
    /// with a structured `slots_exhausted` error.
    pub register_slots: u32,
    pub stages_per_switch: usize,
    /// Epoch window for `run` replays.
    pub epoch_ms: u64,
    /// The workload template `run` replays (bounded-memory streaming;
    /// `segments`/`seed` are overridable per request).
    pub workload: StreamConfig,
    pub replay: ReplayOptions,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            topology: Topology::chain(4),
            register_slots: 8,
            stages_per_switch: 12,
            epoch_ms: 100,
            workload: StreamConfig::default(),
            replay: ReplayOptions::default(),
        }
    }
}

/// One in-flight client request, as the core thread sees it.
enum Cmd {
    Request {
        req: Request,
        /// Where the response line goes (the connection's outbox).
        reply: Sender<String>,
        /// Present on `subscribe`: the same outbox, to be retained by the
        /// core as a journal stream sink.
        stream: Option<Sender<String>>,
        /// Present on `shutdown`: fires once the connection thread has
        /// flushed the response to the socket, so the core does not tear
        /// the process down underneath the final write.
        fence: Option<Receiver<()>>,
    },
}

/// A running daemon. Dropping the handle does NOT stop it; send a
/// `shutdown` request (or use [`Client::shutdown`](crate::Client)) and
/// then [`join`](Daemon::join).
pub struct Daemon {
    addr: SocketAddr,
    core: JoinHandle<()>,
    acceptor: JoinHandle<()>,
}

impl Daemon {
    /// Bind `addr` (use port 0 for an OS-assigned port) and start serving.
    pub fn start(cfg: DaemonConfig, addr: &str) -> io::Result<Daemon> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stopping = Arc::new(AtomicBool::new(false));
        let (tx, rx) = channel::<Cmd>();

        let core = {
            let stopping = Arc::clone(&stopping);
            thread::Builder::new()
                .name("newtond-core".into())
                .spawn(move || core_loop(cfg, rx, stopping, addr))?
        };
        let acceptor = {
            let stopping = Arc::clone(&stopping);
            thread::Builder::new().name("newtond-accept".into()).spawn(move || {
                for conn in listener.incoming() {
                    if stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(sock) = conn else { continue };
                    let tx = tx.clone();
                    let _ = thread::Builder::new()
                        .name("newtond-conn".into())
                        .spawn(move || serve_connection(sock, tx));
                }
            })?
        };
        Ok(Daemon { addr, core, acceptor })
    }

    /// The bound address (read the OS-assigned port here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wait for the daemon to stop (it stops on a `shutdown` request).
    pub fn join(self) {
        let _ = self.core.join();
        let _ = self.acceptor.join();
    }
}

/// Per-connection loop: decode lines, round-trip them through the core.
/// On `subscribe` the same outbox channel becomes the event stream and
/// this thread degenerates into a forwarding pump.
fn serve_connection(sock: TcpStream, tx: Sender<Cmd>) {
    let Ok(read_half) = sock.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(sock);
    let (outbox, inbox) = channel::<String>();
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // client closed
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let req = match proto::parse_request(trimmed) {
            Ok(req) => req,
            Err(bad) => {
                let resp = proto::err_line(bad.id, ErrorKind::BadRequest, &bad.detail);
                if write_line(&mut writer, &resp).is_err() {
                    return;
                }
                continue;
            }
        };
        let subscribing = req.op == Op::Subscribe;
        let mut fence_tx = None;
        let fence = (req.op == Op::Shutdown).then(|| {
            let (ftx, frx) = channel::<()>();
            fence_tx = Some(ftx);
            frx
        });
        let cmd = Cmd::Request {
            req,
            reply: outbox.clone(),
            stream: subscribing.then(|| outbox.clone()),
            fence,
        };
        if tx.send(cmd).is_err() {
            return; // daemon stopping
        }
        let Ok(resp) = inbox.recv() else { return };
        if write_line(&mut writer, &resp).is_err() {
            return;
        }
        if let Some(ftx) = fence_tx {
            let _ = ftx.send(());
            return; // daemon is coming down
        }
        if subscribing {
            // One-way from here: forward journal events until the core
            // drops our sender (shutdown) or the client disconnects. Our
            // own outbox handle must go first, or recv() never
            // disconnects — the core's retained clone is the only sender
            // that should keep the stream open.
            drop(outbox);
            while let Ok(event_line) = inbox.recv() {
                if write_line(&mut writer, &event_line).is_err() {
                    return;
                }
            }
            return;
        }
    }
}

fn write_line(w: &mut BufWriter<TcpStream>, line: &str) -> io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// The state the core thread threads through requests.
struct Core {
    sys: NewtonSystem,
    cfg: DaemonConfig,
    /// Journal index of the first event not yet pushed to subscribers.
    flushed: usize,
    subscribers: Vec<Sender<String>>,
    last_report: Option<RunReport>,
    runs: u64,
}

fn core_loop(cfg: DaemonConfig, rx: Receiver<Cmd>, stopping: Arc<AtomicBool>, addr: SocketAddr) {
    let mut sys = NewtonSystem::with_config_slots(
        cfg.topology.clone(),
        PipelineConfig::default(),
        CompilerConfig::default(),
        cfg.stages_per_switch,
        cfg.register_slots,
    );
    sys.enable_recorder();
    let mut core =
        Core { sys, cfg, flushed: 0, subscribers: Vec::new(), last_report: None, runs: 0 };

    while let Ok(Cmd::Request { req, reply, stream, fence }) = rx.recv() {
        let shutdown = req.op == Op::Shutdown;
        let resp = match req.op {
            Op::Subscribe => {
                if let Some(sink) = stream {
                    core.subscribers.push(sink);
                }
                proto::ok_line(req.id, json::obj(vec![("subscribed", Value::Bool(true))]))
            }
            _ => match handle(&mut core, &req.op) {
                Ok(result) => proto::ok_line(req.id, result),
                Err((kind, detail)) => proto::err_line(req.id, kind, &detail),
            },
        };
        let _ = reply.send(resp);
        flush_journal(&mut core);
        if shutdown {
            // Wait (bounded) for the requester's connection thread to
            // flush the acknowledgement before tearing everything down.
            if let Some(fence) = fence {
                let _ = fence.recv_timeout(std::time::Duration::from_secs(5));
            }
            break;
        }
    }

    // Closing the subscriber senders ends every stream connection; the
    // dummy connect unblocks the acceptor so it can observe the flag.
    stopping.store(true, Ordering::SeqCst);
    core.subscribers.clear();
    let _ = TcpStream::connect(addr);
}

/// Push journal events recorded since the last flush to every subscriber,
/// dropping subscribers whose connection has gone away, then truncate the
/// journal once the backlog exceeds [`JOURNAL_TRUNCATE_AT`].
fn flush_journal(core: &mut Core) {
    let Some(rec) = core.sys.recorder() else { return };
    let events = rec.journal.events();
    if core.flushed < events.len() {
        let lines: Vec<String> =
            events[core.flushed..].iter().map(|e| proto::stream_line(&e.to_json())).collect();
        core.flushed = events.len();
        core.subscribers.retain(|sub| lines.iter().all(|l| sub.send(l.clone()).is_ok()));
    }
    if core.flushed >= JOURNAL_TRUNCATE_AT {
        core.sys.enable_recorder().journal.clear();
        core.flushed = 0;
    }
}

type OpError = (ErrorKind, String);

fn handle(core: &mut Core, op: &Op) -> Result<Value, OpError> {
    match op {
        Op::Ping => Ok(json::obj(vec![("pong", Value::Bool(true))])),
        Op::Install { name, intent } => {
            let query = compile_intent(name, intent)?;
            let receipt = core.sys.install(&query).map_err(install_error)?;
            Ok(receipt_result(core, &receipt, name))
        }
        Op::Update { query: id, name, intent } => {
            let query = compile_intent(name, intent)?;
            let receipt = core.sys.update(*id, &query).map_err(update_error)?;
            Ok(receipt_result(core, &receipt, name))
        }
        Op::Remove { query: id } => {
            let receipt = core
                .sys
                .remove(*id)
                .ok_or_else(|| (ErrorKind::UnknownQuery, format!("query {id} is not installed")))?;
            Ok(json::obj(vec![
                ("query", json::num(receipt.id)),
                ("rules", json::num(receipt.rules as f64)),
                ("switches", json::num(receipt.switches as f64)),
                ("delay_ms", json::num(receipt.delay_ms)),
            ]))
        }
        Op::Retune { query: id, threshold } => {
            let receipt = core.sys.retune_threshold(*id, *threshold).map_err(|e| match e {
                RetuneError::UnknownQuery(_) => (ErrorKind::UnknownQuery, e.to_string()),
                RetuneError::ThresholdOutOfRange { .. } => {
                    (ErrorKind::ThresholdOutOfRange, e.to_string())
                }
            })?;
            Ok(json::obj(vec![
                ("query", json::num(receipt.id)),
                ("rules", json::num(receipt.rules as f64)),
                ("delay_ms", json::num(receipt.delay_ms)),
            ]))
        }
        Op::List => Ok(list_result(core)),
        Op::Inject { event } => {
            let outcome = core.sys.inject_event(*event);
            Ok(json::obj(vec![
                ("fired", json::num(outcome.fired as f64)),
                ("state_loss", json::num(outcome.state_loss as f64)),
            ]))
        }
        Op::Repair => {
            let outcome = core.sys.repair_now();
            Ok(repair_result(&outcome))
        }
        Op::Run { segments, seed } => {
            let mut workload = core.cfg.workload.clone();
            if let Some(n) = segments {
                workload.segments = *n;
            }
            // Unseeded runs draw fresh (but reproducible) traffic: the
            // run ordinal perturbs the template seed.
            workload.seed = seed.unwrap_or(workload.seed.wrapping_add(core.runs));
            let epoch_ms = core.cfg.epoch_ms;
            let replay = core.cfg.replay;
            let report = core.sys.run_stream(&workload, epoch_ms, &replay);
            core.runs += 1;
            let result = report_result(&report, core.runs - 1);
            core.last_report = Some(report);
            Ok(result)
        }
        Op::Report => {
            let report = core
                .last_report
                .as_ref()
                .ok_or_else(|| (ErrorKind::Unavailable, "no run has completed yet".to_string()))?;
            Ok(report_result(report, core.runs.saturating_sub(1)))
        }
        Op::Shutdown => Ok(json::obj(vec![("stopping", Value::Bool(true))])),
        // Subscribe is intercepted by the core loop (it needs the sink).
        Op::Subscribe => unreachable!("subscribe handled by the core loop"),
    }
}

/// Textual intent → validated [`Query`](newton::query::ast::Query).
fn compile_intent(name: &str, intent: &str) -> Result<newton::query::Query, OpError> {
    let query = parse_query(name, intent).map_err(|e| (ErrorKind::Parse, e.to_string()))?;
    let problems = validate(&query);
    if !problems.is_empty() {
        let detail = problems.iter().map(ToString::to_string).collect::<Vec<_>>().join("; ");
        return Err((ErrorKind::Validate, detail));
    }
    Ok(query)
}

fn install_error(e: InstallError) -> OpError {
    match e {
        InstallError::SlotsExhausted { .. } => (ErrorKind::SlotsExhausted, e.to_string()),
        InstallError::Switch(_) => (ErrorKind::Switch, e.to_string()),
    }
}

fn update_error(e: UpdateError) -> OpError {
    match e {
        UpdateError::UnknownQuery(_) => (ErrorKind::UnknownQuery, e.to_string()),
        UpdateError::Rejected { .. } => (ErrorKind::Rejected, e.to_string()),
    }
}

fn receipt_result(core: &Core, receipt: &InstallReceipt, name: &str) -> Value {
    json::obj(vec![
        ("query", json::num(receipt.id)),
        ("name", json::str(name)),
        ("slot", slot_num(core, receipt.id, |s, id| s.register_slot(id))),
        ("offset", slot_num(core, receipt.id, |s, id| s.register_offset(id))),
        ("rules", json::num(receipt.rules as f64)),
        ("switches", json::num(receipt.switches as f64)),
        ("slices", json::num(receipt.slices as f64)),
        ("overflow_slices", json::num(receipt.overflow_slices as f64)),
        ("diff", Value::Bool(receipt.diff)),
        ("delay_ms", json::num(receipt.delay_ms)),
        ("software", Value::Bool(core.sys.runs_in_software(receipt.id))),
    ])
}

fn slot_num(
    core: &Core,
    id: QueryId,
    read: impl Fn(&newton::controller::Controller, QueryId) -> Option<u32>,
) -> Value {
    read(core.sys.controller(), id).map_or(Value::Null, json::num)
}

fn list_result(core: &Core) -> Value {
    let controller = core.sys.controller();
    let mut ids: Vec<QueryId> = controller.installed().keys().copied().collect();
    ids.sort_unstable();
    let queries = ids
        .into_iter()
        .map(|id| {
            let iq = &controller.installed()[&id];
            json::obj(vec![
                ("query", json::num(id)),
                ("name", json::str(iq.query.name.as_str())),
                ("slot", slot_num(core, id, |c, id| c.register_slot(id))),
                ("offset", slot_num(core, id, |c, id| c.register_offset(id))),
                ("slices", json::num(iq.slices.len() as f64)),
                ("software", Value::Bool(core.sys.runs_in_software(id))),
            ])
        })
        .collect();
    json::obj(vec![
        ("slots", json::num(controller.register_slots())),
        ("in_use", json::num(controller.installed().len() as f64)),
        ("queries", Value::Arr(queries)),
    ])
}

fn repair_result(outcome: &RepairOutcome) -> Value {
    let ids = |ids: &[QueryId]| Value::Arr(ids.iter().map(|&id| json::num(id)).collect());
    json::obj(vec![
        ("examined", json::num(outcome.examined as f64)),
        ("repaired", ids(&outcome.repaired)),
        ("degraded", ids(&outcome.degraded)),
        ("rules_installed", json::num(outcome.rules_installed as f64)),
        ("switches_touched", json::num(outcome.switches_touched as f64)),
        ("delay_ms", json::num(outcome.delay_ms)),
    ])
}

fn report_result(report: &RunReport, run: u64) -> Value {
    let mut reported: Vec<(QueryId, usize)> =
        report.reported.iter().map(|(&id, keys)| (id, keys.len())).collect();
    reported.sort_unstable();
    let reported = reported
        .into_iter()
        .map(|(id, keys)| {
            json::obj(vec![("query", json::num(id)), ("keys", json::num(keys as f64))])
        })
        .collect();
    json::obj(vec![
        ("run", json::num(run as f64)),
        ("packets", json::num(report.packets as f64)),
        ("messages", json::num(report.messages as f64)),
        ("overhead_ratio", json::num(report.overhead_ratio())),
        ("epochs", json::num(report.epoch_count as f64)),
        ("unrouted", json::num(report.unrouted as f64)),
        ("repairs", json::num(report.repairs as f64)),
        ("repair_delay_ms", json::num(report.repair_delay_ms)),
        ("degraded_query_epochs", json::num(report.degraded_query_epochs as f64)),
        ("state_loss_events", json::num(report.state_loss_events as f64)),
        ("reported", Value::Arr(reported)),
    ])
}
