//! A small blocking client for the newtond socket protocol.
//!
//! One TCP connection, one request in flight at a time (the daemon
//! supports pipelining; this client keeps it simple). A second
//! connection turned into a [`Subscription`] streams journal events.

use crate::json::{self, Value};
use crate::proto::ErrorKind;
use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Client-side failure: transport, protocol, or a daemon-reported error.
#[derive(Debug)]
pub enum ClientError {
    Io(io::Error),
    /// The daemon sent something that is not a valid response line.
    Protocol(String),
    /// The daemon answered `ok:false`.
    Daemon {
        kind: String,
        detail: String,
    },
}

impl ClientError {
    /// The machine-readable kind of a daemon-reported error, if that is
    /// what this is.
    pub fn kind(&self) -> Option<&str> {
        match self {
            ClientError::Daemon { kind, .. } => Some(kind),
            _ => None,
        }
    }

    /// Whether the daemon reported exactly `kind`.
    pub fn is_kind(&self, kind: ErrorKind) -> bool {
        self.kind() == Some(kind.as_str())
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(s) => write!(f, "protocol error: {s}"),
            ClientError::Daemon { kind, detail } => write!(f, "{kind}: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected request/response client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connect to a daemon, with a read timeout so a wedged daemon fails
    /// the call instead of hanging the caller.
    pub fn connect(addr: &str, timeout: Duration) -> Result<Client, ClientError> {
        let sock = TcpStream::connect(addr)?;
        sock.set_read_timeout(Some(timeout))?;
        let reader = BufReader::new(sock.try_clone()?);
        Ok(Client { reader, writer: BufWriter::new(sock), next_id: 1 })
    }

    /// Send one op with extra members, await its response, and return the
    /// `result` value. Daemon-side failures come back as
    /// [`ClientError::Daemon`] with the structured kind.
    pub fn request(&mut self, op: &str, fields: Vec<(&str, Value)>) -> Result<Value, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut members = vec![("id", json::num(id as f64)), ("op", json::str(op))];
        members.extend(fields);
        let line = json::obj(members).to_string();
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;

        let mut resp = String::new();
        if self.reader.read_line(&mut resp)? == 0 {
            return Err(ClientError::Protocol("connection closed mid-request".into()));
        }
        let v = json::parse(resp.trim())
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))?;
        let echoed = v.get("id").and_then(Value::as_u64);
        if echoed != Some(id) {
            return Err(ClientError::Protocol(format!(
                "response id {echoed:?} does not match request id {id}"
            )));
        }
        match v.get("ok").and_then(Value::as_bool) {
            Some(true) => Ok(v.get("result").cloned().unwrap_or(Value::Null)),
            Some(false) => {
                let err = v.get("error").cloned().unwrap_or(Value::Null);
                Err(ClientError::Daemon {
                    kind: err.get("kind").and_then(Value::as_str).unwrap_or("unknown").to_string(),
                    detail: err
                        .get("detail")
                        .and_then(Value::as_str)
                        .unwrap_or_default()
                        .to_string(),
                })
            }
            None => Err(ClientError::Protocol("response missing \"ok\"".into())),
        }
    }

    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request("ping", vec![]).map(|_| ())
    }

    /// Install a textual intent; returns the result object (`query`,
    /// `slot`, `offset`, receipt fields).
    pub fn install(&mut self, name: &str, intent: &str) -> Result<Value, ClientError> {
        self.request("install", vec![("name", json::str(name)), ("intent", json::str(intent))])
    }

    pub fn update(&mut self, query: u32, name: &str, intent: &str) -> Result<Value, ClientError> {
        self.request(
            "update",
            vec![
                ("query", json::num(query)),
                ("name", json::str(name)),
                ("intent", json::str(intent)),
            ],
        )
    }

    pub fn remove(&mut self, query: u32) -> Result<Value, ClientError> {
        self.request("remove", vec![("query", json::num(query))])
    }

    pub fn retune(&mut self, query: u32, threshold: u64) -> Result<Value, ClientError> {
        self.request(
            "retune",
            vec![("query", json::num(query)), ("threshold", json::num(threshold as f64))],
        )
    }

    pub fn list(&mut self) -> Result<Value, ClientError> {
        self.request("list", vec![])
    }

    pub fn fail_switch(&mut self, s: usize) -> Result<Value, ClientError> {
        self.request(
            "inject",
            vec![("event", json::str("fail_switch")), ("switch", json::num(s as f64))],
        )
    }

    pub fn restore_switch(&mut self, s: usize) -> Result<Value, ClientError> {
        self.request(
            "inject",
            vec![("event", json::str("restore_switch")), ("switch", json::num(s as f64))],
        )
    }

    pub fn repair(&mut self) -> Result<Value, ClientError> {
        self.request("repair", vec![])
    }

    /// Replay the daemon's workload stream; `segments`/`seed` override
    /// the template when given.
    pub fn run(&mut self, segments: Option<u64>, seed: Option<u64>) -> Result<Value, ClientError> {
        let mut fields = Vec::new();
        if let Some(n) = segments {
            fields.push(("segments", json::num(n as f64)));
        }
        if let Some(s) = seed {
            fields.push(("seed", json::num(s as f64)));
        }
        self.request("run", fields)
    }

    pub fn report(&mut self) -> Result<Value, ClientError> {
        self.request("report", vec![])
    }

    /// Live metrics snapshot: `{"counters":{...},"gauges":{...},
    /// "histograms":{name:{count,sum,max,p50,p90,p99}}}`.
    pub fn metrics(&mut self) -> Result<Value, ClientError> {
        self.request("metrics", vec![])
    }

    /// Live metrics in the Prometheus text exposition format.
    pub fn metrics_prometheus(&mut self) -> Result<String, ClientError> {
        let v = self.request("metrics", vec![("format", json::str("prometheus"))])?;
        v.get("prometheus")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("metrics response missing \"prometheus\"".into()))
    }

    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request("shutdown", vec![]).map(|_| ())
    }

    /// Turn this connection into a journal event stream.
    pub fn subscribe(mut self) -> Result<Subscription, ClientError> {
        self.request("subscribe", vec![])?;
        Ok(Subscription { reader: self.reader })
    }
}

/// One line of a journal stream: an event, or a truncation notice (the
/// daemon dropped `n` events for this subscriber because it fell behind
/// its buffer).
#[derive(Debug, Clone, PartialEq)]
pub enum StreamItem {
    Event(Value),
    Truncated(u64),
}

/// A connection in streaming mode: yields journal events as they happen.
pub struct Subscription {
    reader: BufReader<TcpStream>,
}

impl Subscription {
    /// The next stream line, marker-aware. `Ok(None)` means the daemon
    /// closed the stream (shutdown); a read timeout surfaces as `Err`.
    pub fn next_item(&mut self) -> Result<Option<StreamItem>, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        let v = json::parse(line.trim())
            .map_err(|e| ClientError::Protocol(format!("unparseable stream line: {e}")))?;
        if let Some(event) = v.get("event") {
            return Ok(Some(StreamItem::Event(event.clone())));
        }
        if let Some(n) = v.get("truncated").and_then(Value::as_u64) {
            return Ok(Some(StreamItem::Truncated(n)));
        }
        Err(ClientError::Protocol("stream line missing \"event\"".into()))
    }

    /// The next stream line's `event` object, skipping truncation markers
    /// (use [`next_item`](Self::next_item) to observe losses). `Ok(None)`
    /// means the daemon closed the stream (shutdown).
    pub fn next_event(&mut self) -> Result<Option<Value>, ClientError> {
        loop {
            match self.next_item()? {
                Some(StreamItem::Event(event)) => return Ok(Some(event)),
                Some(StreamItem::Truncated(_)) => continue,
                None => return Ok(None),
            }
        }
    }

    /// Read events until `pred` matches one (returning it) or the stream
    /// ends (`Ok(None)`).
    pub fn wait_for(
        &mut self,
        mut pred: impl FnMut(&Value) -> bool,
    ) -> Result<Option<Value>, ClientError> {
        while let Some(event) = self.next_event()? {
            if pred(&event) {
                return Ok(Some(event));
            }
        }
        Ok(None)
    }
}
