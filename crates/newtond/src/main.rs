//! The `newtond` binary: serve a resident Newton controller, or talk to
//! one (`--client`).
//!
//! Serve (default): bind a socket, own a live system, accept intents.
//!
//! ```text
//! newtond --listen 127.0.0.1:0 --port-file /tmp/newtond.port \
//!         --topology fat_tree:4 --slots 4
//! ```
//!
//! Client mode: one command per invocation against a running daemon.
//!
//! ```text
//! newtond --client 127.0.0.1:7424 install scan \
//!         'filter(proto == 6) | map(sip) | reduce(sip, count) | where >= 30'
//! newtond --client 127.0.0.1:7424 list
//! newtond --client 127.0.0.1:7424 shutdown
//! ```

use newtond::json::Value;
use newtond::{Client, Daemon, DaemonConfig};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
newtond — the Newton controller as a resident service

Serve:
  newtond [--listen ADDR] [--port-file PATH] [--topology chain:N|fat_tree:K]
          [--slots N] [--stages N] [--epoch-ms N] [--subscriber-buffer N]

Client:
  newtond --client ADDR COMMAND [ARGS..]

Client commands:
  ping                          liveness probe
  install NAME INTENT           compile + install a textual intent
  update ID NAME INTENT         replace a live query in place
  remove ID                     remove a live query
  retune ID THRESHOLD           move a report threshold in place
  list                          live queries and their register slots
  fail-switch S | restore-switch S
  repair                        run a repair pass now
  run [SEGMENTS]                replay the workload stream
  report                        last run's summary
  metrics [--prom]              live metrics snapshot (JSON, or Prometheus text)
  subscribe [COUNT]             stream journal events (default 10)
  shutdown                      stop the daemon";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let result = if let Some(pos) = args.iter().position(|a| a == "--client") {
        client_main(&args[pos + 1..])
    } else {
        serve_main(&args)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("newtond: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn parse_topology(spec: &str) -> Result<newton::net::Topology, String> {
    let (kind, n) = spec.split_once(':').ok_or("topology must be chain:N or fat_tree:K")?;
    let n: usize = n.parse().map_err(|_| format!("bad topology size {n:?}"))?;
    match kind {
        "chain" => Ok(newton::net::Topology::chain(n)),
        "fat_tree" => Ok(newton::net::Topology::fat_tree(n)),
        other => Err(format!("unknown topology {other:?}")),
    }
}

fn serve_main(args: &[String]) -> Result<(), String> {
    let mut cfg = DaemonConfig::default();
    let mut listen = "127.0.0.1:7424".to_string();
    let mut port_file: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().map(String::as_str).ok_or(format!("{name} needs a value")).map(str::to_string)
        };
        match flag.as_str() {
            "--listen" => listen = value("--listen")?,
            "--port-file" => port_file = Some(value("--port-file")?),
            "--topology" => cfg.topology = parse_topology(&value("--topology")?)?,
            "--slots" => {
                cfg.register_slots =
                    value("--slots")?.parse().map_err(|_| "--slots wants a u32")?;
            }
            "--stages" => {
                cfg.stages_per_switch =
                    value("--stages")?.parse().map_err(|_| "--stages wants a usize")?;
            }
            "--epoch-ms" => {
                cfg.epoch_ms =
                    value("--epoch-ms")?.parse().map_err(|_| "--epoch-ms wants a u64")?;
            }
            "--subscriber-buffer" => {
                cfg.subscriber_buffer = value("--subscriber-buffer")?
                    .parse()
                    .map_err(|_| "--subscriber-buffer wants a usize")?;
            }
            other => return Err(format!("unknown flag {other:?} (see --help)")),
        }
    }

    let daemon = Daemon::start(cfg, &listen).map_err(|e| format!("bind {listen}: {e}"))?;
    let addr = daemon.addr();
    if let Some(path) = port_file {
        // Write-then-rename so pollers never read a half-written file.
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, format!("{addr}\n")).map_err(|e| format!("write {tmp}: {e}"))?;
        std::fs::rename(&tmp, &path).map_err(|e| format!("rename to {path}: {e}"))?;
    }
    println!("newtond listening on {addr}");
    daemon.join();
    println!("newtond stopped");
    Ok(())
}

fn client_main(args: &[String]) -> Result<(), String> {
    let [addr, command, rest @ ..] = args else {
        return Err("usage: newtond --client ADDR COMMAND [ARGS..] (see --help)".into());
    };
    let mut client = Client::connect(addr, Duration::from_secs(30))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let arg = |i: usize, what: &str| -> Result<&str, String> {
        rest.get(i).map(String::as_str).ok_or(format!("{command} needs {what}"))
    };
    let id_arg = |i: usize| -> Result<u32, String> {
        arg(i, "a query id")?.parse().map_err(|_| "query id must be a u32".to_string())
    };
    let print = |v: Value| {
        println!("{v}");
        Ok(())
    };
    let fail = |e: newtond::ClientError| e.to_string();
    match command.as_str() {
        "ping" => client.ping().map_err(fail).and_then(|()| print(Value::Bool(true))),
        "install" => {
            client.install(arg(0, "NAME")?, arg(1, "INTENT")?).map_err(fail).and_then(print)
        }
        "update" => client
            .update(id_arg(0)?, arg(1, "NAME")?, arg(2, "INTENT")?)
            .map_err(fail)
            .and_then(print),
        "remove" => client.remove(id_arg(0)?).map_err(fail).and_then(print),
        "retune" => {
            let threshold: u64 =
                arg(1, "THRESHOLD")?.parse().map_err(|_| "threshold must be a u64".to_string())?;
            client.retune(id_arg(0)?, threshold).map_err(fail).and_then(print)
        }
        "list" => client.list().map_err(fail).and_then(print),
        "fail-switch" => {
            let s: usize =
                arg(0, "S")?.parse().map_err(|_| "switch must be an index".to_string())?;
            client.fail_switch(s).map_err(fail).and_then(print)
        }
        "restore-switch" => {
            let s: usize =
                arg(0, "S")?.parse().map_err(|_| "switch must be an index".to_string())?;
            client.restore_switch(s).map_err(fail).and_then(print)
        }
        "repair" => client.repair().map_err(fail).and_then(print),
        "run" => {
            let segments = match rest.first() {
                Some(n) => Some(n.parse().map_err(|_| "segments must be a u64".to_string())?),
                None => None,
            };
            client.run(segments, None).map_err(fail).and_then(print)
        }
        "report" => client.report().map_err(fail).and_then(print),
        "metrics" => {
            if rest.first().map(String::as_str) == Some("--prom") {
                let text = client.metrics_prometheus().map_err(fail)?;
                print!("{text}");
                Ok(())
            } else {
                client.metrics().map_err(fail).and_then(print)
            }
        }
        "subscribe" => {
            let count: usize = match rest.first() {
                Some(n) => n.parse().map_err(|_| "count must be a usize".to_string())?,
                None => 10,
            };
            let mut sub = client.subscribe().map_err(fail)?;
            for _ in 0..count {
                match sub.next_event().map_err(fail)? {
                    Some(event) => println!("{event}"),
                    None => break,
                }
            }
            Ok(())
        }
        "shutdown" => client.shutdown().map_err(fail).and_then(|()| print(Value::Bool(true))),
        other => Err(format!("unknown client command {other:?} (see --help)")),
    }
}
