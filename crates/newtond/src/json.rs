//! A minimal JSON tree — parser and writer — for the newtond wire
//! protocol.
//!
//! The workspace vendors no serde (shims/README.md), and the daemon's
//! needs are small: parse one request object per line, render one
//! response object per line. Numbers are kept as `f64`; every integer the
//! protocol carries (query ids, thresholds up to 2^32, counters) is well
//! inside the 2^53 exact range. Object key order is preserved so rendered
//! responses are deterministic.

use std::fmt;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Insertion-ordered members (no dedup — last lookup wins on
    /// duplicate keys, matching what a HashMap overwrite would keep).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (last occurrence wins); `None` on
    /// non-objects and absent keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer view of a number; `None` when fractional,
    /// negative, or beyond the `f64` exact-integer range.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() != 0.0 || !(0.0..=9_007_199_254_740_992.0).contains(&n) {
            return None;
        }
        Some(n as u64)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    /// Canonical rendering: no whitespace, preserved key order, floats in
    /// Rust's shortest round-trip form (integers without a trailing
    /// `.0`) — the same conventions as the telemetry journal.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Convenience constructors for response building.
pub fn obj(members: Vec<(&str, Value)>) -> Value {
    Value::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

pub fn num(n: impl Into<f64>) -> Value {
    Value::Num(n.into())
}

pub fn str(s: impl Into<String>) -> Value {
    Value::Str(s.into())
}

/// Where and why a parse failed (byte offset into the line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub at: usize,
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parse one complete JSON document; trailing non-whitespace is an error
/// (requests are one object per line, nothing after).
pub fn parse(src: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Input is a &str, so the run is valid UTF-8.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: one optional low half.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined =
                                        0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("short \\u escape"))?;
            let d = (b as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Value::Num).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_request_shaped_object() {
        let src = r#"{"id":7,"op":"install","name":"q","intent":"filter(proto == 6) | map(dip)"}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("op").unwrap().as_str(), Some("install"));
        assert_eq!(v.to_string(), src);
    }

    #[test]
    fn escapes_survive_both_directions() {
        let v = parse(r#"{"s":"a\"b\\c\ndé"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\ndé"));
        let re = parse(&v.to_string()).unwrap();
        assert_eq!(re, v);
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_numbers() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":01e}").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn u64_view_rejects_fractions_and_negatives() {
        assert_eq!(parse("4294967296").unwrap().as_u64(), Some(1 << 32));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }
}
