//! The newtond wire protocol: newline-delimited JSON requests and
//! responses over a local TCP socket.
//!
//! One request per line, one response line per request:
//!
//! ```text
//! -> {"id":1,"op":"install","name":"scan","intent":"filter(proto == 6) | ..."}
//! <- {"id":1,"ok":true,"result":{"query":0,"slot":0,...}}
//! -> {"id":2,"op":"install","name":"fifth","intent":"..."}
//! <- {"id":2,"ok":false,"error":{"kind":"slots_exhausted","detail":"..."}}
//! ```
//!
//! `subscribe` flips the connection into a one-way event stream: the
//! server acknowledges, then pushes `{"stream":"journal","event":{...}}`
//! lines (telemetry [`Event`](newton::telemetry::Event)s, same bytes as
//! the journal's JSONL) until the client disconnects or the daemon shuts
//! down. A streaming connection reads no further requests. A subscriber
//! that falls behind the configured buffer loses events rather than
//! wedging the daemon; the loss is reported in-stream as a
//! `{"stream":"journal","truncated":<n>}` marker once it catches up.

use crate::json::{self, Value};
use newton::net::NetworkEvent;
use newton::telemetry::QueryId;
use std::fmt;

/// One request line, decoded.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    pub op: Op,
}

/// The operations the daemon serves. Every mutation is serialized through
/// the core loop that owns the [`NewtonSystem`](newton::NewtonSystem), so
/// concurrent clients cannot interleave mid-pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Liveness probe.
    Ping,
    /// Parse → validate → compile → place → install a textual intent.
    Install { name: String, intent: String },
    /// Replace a live query in place (same id, same register slot).
    Update { query: QueryId, name: String, intent: String },
    /// Remove a live query everywhere.
    Remove { query: QueryId },
    /// Move a live query's report threshold without reinstalling.
    Retune { query: QueryId, threshold: u64 },
    /// Inventory of live queries with their register slots.
    List,
    /// Apply a network dynamic now (fail/restore a switch or link).
    Inject { event: NetworkEvent },
    /// Run a controller repair pass now.
    Repair,
    /// Replay the configured workload stream through the live system.
    Run { segments: Option<u64>, seed: Option<u64> },
    /// Summary of the most recent `run`.
    Report,
    /// Live operational metrics snapshot (counters, gauges, histogram
    /// quantiles); `prometheus` selects the text exposition format.
    Metrics { prometheus: bool },
    /// Turn this connection into a journal event stream.
    Subscribe,
    /// Stop the daemon (all connections close).
    Shutdown,
}

/// A malformed request line. Distinct from domain errors (slot
/// exhaustion, unknown query): those arrive as `ok:false` responses with
/// their own kinds; `BadRequest` means the line itself could not be
/// understood.
#[derive(Debug, Clone, PartialEq)]
pub struct BadRequest {
    /// Echoed id when one was readable, 0 otherwise.
    pub id: u64,
    pub detail: String,
}

impl fmt::Display for BadRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad request: {}", self.detail)
    }
}

impl std::error::Error for BadRequest {}

/// Decode one request line.
pub fn parse_request(line: &str) -> Result<Request, BadRequest> {
    let v = json::parse(line)
        .map_err(|e| BadRequest { id: 0, detail: format!("invalid JSON: {e}") })?;
    let id = v.get("id").and_then(Value::as_u64).unwrap_or(0);
    let fail = |detail: String| BadRequest { id, detail };
    let op_name = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| fail("missing string field \"op\"".into()))?;
    let need_str = |field: &str| {
        v.get(field)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| fail(format!("op {op_name:?} needs string field {field:?}")))
    };
    let need_u64 = |field: &str| {
        v.get(field)
            .and_then(Value::as_u64)
            .ok_or_else(|| fail(format!("op {op_name:?} needs non-negative integer {field:?}")))
    };
    let need_query = || {
        let raw = need_u64("query")?;
        QueryId::try_from(raw).map_err(|_| fail(format!("query id {raw} exceeds u32")))
    };
    let op = match op_name {
        "ping" => Op::Ping,
        "install" => Op::Install { name: need_str("name")?, intent: need_str("intent")? },
        "update" => Op::Update {
            query: need_query()?,
            name: need_str("name")?,
            intent: need_str("intent")?,
        },
        "remove" => Op::Remove { query: need_query()? },
        "retune" => Op::Retune { query: need_query()?, threshold: need_u64("threshold")? },
        "list" => Op::List,
        "inject" => Op::Inject { event: parse_event(&v, &fail)? },
        "repair" => Op::Repair,
        "run" => Op::Run {
            segments: v.get("segments").and_then(Value::as_u64),
            seed: v.get("seed").and_then(Value::as_u64),
        },
        "report" => Op::Report,
        "metrics" => Op::Metrics {
            prometheus: v.get("format").and_then(Value::as_str) == Some("prometheus"),
        },
        "subscribe" => Op::Subscribe,
        "shutdown" => Op::Shutdown,
        other => return Err(fail(format!("unknown op {other:?}"))),
    };
    Ok(Request { id, op })
}

fn parse_event(
    v: &Value,
    fail: &impl Fn(String) -> BadRequest,
) -> Result<NetworkEvent, BadRequest> {
    let kind = v
        .get("event")
        .and_then(Value::as_str)
        .ok_or_else(|| fail("op \"inject\" needs string field \"event\"".into()))?;
    let node = |field: &str| {
        v.get(field)
            .and_then(Value::as_u64)
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| fail(format!("event {kind:?} needs switch index {field:?}")))
    };
    Ok(match kind {
        "fail_switch" => NetworkEvent::FailSwitch { s: node("switch")? },
        "restore_switch" => NetworkEvent::RestoreSwitch { s: node("switch")? },
        "fail_link" => NetworkEvent::FailLink { a: node("a")?, b: node("b")? },
        "restore_link" => NetworkEvent::RestoreLink { a: node("a")?, b: node("b")? },
        other => return Err(fail(format!("unknown event {other:?}"))),
    })
}

/// Machine-readable failure kinds carried in `error.kind`. Stable strings:
/// clients dispatch on these, not on `detail` prose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line itself was malformed.
    BadRequest,
    /// The intent text failed to parse.
    Parse,
    /// The intent parsed but failed semantic validation.
    Validate,
    /// All register slots are held by live queries (§4.1 invariant).
    SlotsExhausted,
    /// A switch rejected the compiled rules; the install rolled back.
    Switch,
    /// The query id is not installed.
    UnknownQuery,
    /// Retune threshold exceeds the 32-bit register range.
    ThresholdOutOfRange,
    /// An update's new definition was rejected; the old query was
    /// restored (or scrubbed when even the restore failed).
    Rejected,
    /// The op needs state the daemon does not have (e.g. `report` before
    /// any `run`).
    Unavailable,
}

impl ErrorKind {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Parse => "parse",
            ErrorKind::Validate => "validate",
            ErrorKind::SlotsExhausted => "slots_exhausted",
            ErrorKind::Switch => "switch",
            ErrorKind::UnknownQuery => "unknown_query",
            ErrorKind::ThresholdOutOfRange => "threshold_out_of_range",
            ErrorKind::Rejected => "rejected",
            ErrorKind::Unavailable => "unavailable",
        }
    }
}

/// Render a success response line (no trailing newline).
pub fn ok_line(id: u64, result: Value) -> String {
    json::obj(vec![("id", json::num(id as f64)), ("ok", Value::Bool(true)), ("result", result)])
        .to_string()
}

/// Render a failure response line (no trailing newline).
pub fn err_line(id: u64, kind: ErrorKind, detail: &str) -> String {
    json::obj(vec![
        ("id", json::num(id as f64)),
        ("ok", Value::Bool(false)),
        (
            "error",
            json::obj(vec![("kind", json::str(kind.as_str())), ("detail", json::str(detail))]),
        ),
    ])
    .to_string()
}

/// Render one journal event as a stream line (no trailing newline). The
/// embedded event bytes are exactly what `Journal::to_jsonl` emits.
pub fn stream_line(event_json: &str) -> String {
    format!("{{\"stream\":\"journal\",\"event\":{event_json}}}")
}

/// Render a journal-truncation marker (no trailing newline): the daemon
/// dropped `n` events for this subscriber because its backlog exceeded
/// the configured buffer. Delivered in-stream, before the next event the
/// subscriber does receive, once it catches up.
pub fn truncated_line(n: u64) -> String {
    format!("{{\"stream\":\"journal\",\"truncated\":{n}}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_the_full_op_set() {
        let r =
            parse_request(r#"{"id":3,"op":"retune","query":5,"threshold":4294967295}"#).unwrap();
        assert_eq!(r, Request { id: 3, op: Op::Retune { query: 5, threshold: u32::MAX as u64 } });
        let r =
            parse_request(r#"{"id":4,"op":"inject","event":"fail_switch","switch":2}"#).unwrap();
        assert_eq!(r.op, Op::Inject { event: NetworkEvent::FailSwitch { s: 2 } });
        assert_eq!(parse_request(r#"{"id":1,"op":"list"}"#).unwrap().op, Op::List);
    }

    #[test]
    fn bad_lines_echo_the_id_when_readable() {
        let e = parse_request(r#"{"id":9,"op":"install","name":"x"}"#).unwrap_err();
        assert_eq!(e.id, 9);
        assert!(e.detail.contains("intent"));
        assert_eq!(parse_request("not json").unwrap_err().id, 0);
    }

    #[test]
    fn response_lines_are_single_json_objects() {
        let line = err_line(7, ErrorKind::SlotsExhausted, "all 4 slots in use");
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("error").unwrap().get("kind").unwrap().as_str(), Some("slots_exhausted"));
    }
}
