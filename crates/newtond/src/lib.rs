//! `newtond` — the Newton controller as a resident service.
//!
//! The paper's workflow is interactive: operators express monitoring
//! intents in a textual language, the controller compiles and installs
//! them into the running network, and later drills down, retunes, or
//! removes them — all without interrupting other queries (§4, Fig. 11).
//! The rest of this workspace exercises that pipeline in batch harnesses;
//! this crate keeps it resident: a daemon owns a live
//! [`NewtonSystem`](newton::NewtonSystem) and serves intents over a local
//! TCP socket as newline-delimited JSON, so many concurrent clients share
//! one network's slot budget, telemetry journal, and repair loop.
//!
//! * [`proto`] — the wire protocol: request/response shapes, error kinds.
//! * [`server`] — the daemon: core thread owning the system, acceptor,
//!   per-connection threads, journal streaming to subscribers.
//! * [`client`] — a small blocking client (used by the `--client` CLI
//!   mode, the examples, and the integration tests).
//! * [`json`] — the dependency-free JSON tree both sides share.

pub mod client;
pub mod json;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError, StreamItem, Subscription};
pub use proto::{ErrorKind, Op, Request};
pub use server::{Daemon, DaemonConfig};
