//! \*Flow: grouped packet vectors (GPVs).
//!
//! \*Flow exports richer data than TurboFlow: per-flow *vectors of
//! per-packet features*, assembled in a cache and shipped to software
//! analyzers that run the queries. A GPV is exported when it fills up
//! (`gpv_capacity` packet features), when its cache slot is stolen, and at
//! epoch end. Export volume is proportional to *packets* (every packet's
//! features leave the switch eventually) — the 8-CPU-cores-per-640-Gbps
//! cost §3.1 quotes.

use crate::ExportModel;
use newton_packet::{FlowKey, Packet};
use newton_sketch::HashFn;

#[derive(Debug, Clone, Copy)]
struct GpvSlot {
    key: FlowKey,
    features: u32,
}

/// The \*Flow export model.
pub struct StarFlow {
    slots: Vec<Option<GpvSlot>>,
    hash: HashFn,
    gpv_capacity: u32,
}

impl StarFlow {
    pub fn new(slots: usize, gpv_capacity: u32) -> Self {
        assert!(slots > 0 && gpv_capacity > 0);
        StarFlow { slots: vec![None; slots], hash: HashFn::new(0x5F10, slots as u32), gpv_capacity }
    }

    /// Paper-scale default: 8 Ki cache slots, 32 packet features per GPV.
    pub fn default_model() -> Self {
        StarFlow::new(8 * 1024, 32)
    }
}

impl ExportModel for StarFlow {
    fn name(&self) -> &'static str {
        "*Flow"
    }

    fn observe(&mut self, pkt: &Packet) -> u64 {
        let key = pkt.flow_key();
        let idx = self.hash.hash_bytes(&key.to_bytes()) as usize;
        match &mut self.slots[idx] {
            Some(slot) if slot.key == key => {
                slot.features += 1;
                if slot.features >= self.gpv_capacity {
                    self.slots[idx] = None;
                    1 // full GPV shipped
                } else {
                    0
                }
            }
            Some(_) => {
                // Collision evicts the partial GPV.
                self.slots[idx] = Some(GpvSlot { key, features: 1 });
                1
            }
            None => {
                self.slots[idx] = Some(GpvSlot { key, features: 1 });
                0
            }
        }
    }

    fn end_epoch(&mut self) -> u64 {
        let mut flushed = 0;
        for s in &mut self.slots {
            if s.take().is_some() {
                flushed += 1;
            }
        }
        flushed
    }

    fn message_bytes(&self) -> u64 {
        // 5-tuple + up to gpv_capacity packed per-packet features.
        16 + 4 * self.gpv_capacity as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newton_packet::PacketBuilder;

    #[test]
    fn full_gpvs_ship_mid_epoch() {
        let mut sf = StarFlow::new(1 << 10, 8);
        let p = PacketBuilder::new().src_port(9).build();
        let mut msgs = 0;
        for _ in 0..24 {
            msgs += sf.observe(&p);
        }
        assert_eq!(msgs, 3, "24 packets at 8 features/GPV = 3 full GPVs");
        assert_eq!(sf.end_epoch(), 0, "nothing resident after exact multiples");
    }

    #[test]
    fn partial_gpvs_flush_at_epoch_end() {
        let mut sf = StarFlow::new(1 << 10, 32);
        let mut msgs = 0;
        for f in 0..50u16 {
            msgs += sf.observe(&PacketBuilder::new().src_port(2000 + f).build());
        }
        msgs += sf.end_epoch();
        assert_eq!(msgs, 50, "one GPV per flow (collision evictions count too)");
    }

    #[test]
    fn export_volume_tracks_packets_not_flows() {
        let mut sf = StarFlow::new(1 << 12, 4);
        let mut msgs = 0;
        // One flow, many packets: messages grow with packets.
        let p = PacketBuilder::new().src_port(1).build();
        for _ in 0..400 {
            msgs += sf.observe(&p);
        }
        msgs += sf.end_epoch();
        assert_eq!(msgs, 100, "400 packets / 4 features per GPV");
    }
}
