//! TurboFlow: information-rich per-flow records from commodity switches.
//!
//! TurboFlow keeps a fixed-size flow table in the ASIC; the switch CPU
//! assembles full flow records. A record is exported when its slot is
//! stolen by a colliding flow, when the flow terminates (TCP FIN/RST), and
//! at epoch end for everything still resident. Export volume is therefore
//! proportional to the number of flows (plus collision churn) — the
//! scalability ceiling §2.2 describes.

use crate::ExportModel;
use newton_packet::{FlowKey, Packet, TcpFlags};
use newton_sketch::HashFn;

/// One resident flow-table entry.
#[derive(Debug, Clone, Copy)]
struct Slot {
    key: FlowKey,
    packets: u32,
}

/// The TurboFlow export model.
pub struct TurboFlow {
    slots: Vec<Option<Slot>>,
    hash: HashFn,
}

impl TurboFlow {
    /// A table with `slots` entries.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0);
        TurboFlow { slots: vec![None; slots], hash: HashFn::new(0x7F0B, slots as u32) }
    }

    /// The paper-scale default: a 16 Ki-entry flow table.
    pub fn default_model() -> Self {
        TurboFlow::new(16 * 1024)
    }
}

impl ExportModel for TurboFlow {
    fn name(&self) -> &'static str {
        "TurboFlow"
    }

    fn observe(&mut self, pkt: &Packet) -> u64 {
        let key = pkt.flow_key();
        let idx = self.hash.hash_bytes(&key.to_bytes()) as usize;
        let mut exported = 0;
        match &mut self.slots[idx] {
            Some(slot) if slot.key == key => {
                slot.packets += 1;
                // Flow termination exports the record immediately.
                if pkt.tcp_flags.contains(TcpFlags::FIN) || pkt.tcp_flags.contains(TcpFlags::RST) {
                    exported = 1;
                    self.slots[idx] = None;
                }
            }
            Some(_) => {
                // Collision: evict (export) the resident record.
                exported = 1;
                self.slots[idx] = Some(Slot { key, packets: 1 });
            }
            None => {
                self.slots[idx] = Some(Slot { key, packets: 1 });
            }
        }
        exported
    }

    fn end_epoch(&mut self) -> u64 {
        let mut flushed = 0;
        for s in &mut self.slots {
            if s.take().is_some() {
                flushed += 1;
            }
        }
        flushed
    }

    fn message_bytes(&self) -> u64 {
        48 // 5-tuple + counters + timestamps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newton_packet::PacketBuilder;

    #[test]
    fn one_record_per_flow_at_epoch_end() {
        let mut tf = TurboFlow::new(1 << 14);
        let mut msgs = 0;
        for f in 0..100u16 {
            for _ in 0..10 {
                msgs += tf.observe(&PacketBuilder::new().src_port(1000 + f).build());
            }
        }
        msgs += tf.end_epoch();
        assert_eq!(msgs, 100, "one record per flow (no collisions at this load)");
    }

    #[test]
    fn fin_exports_immediately() {
        let mut tf = TurboFlow::new(1 << 10);
        let base = PacketBuilder::new().src_port(7777);
        assert_eq!(tf.observe(&base.clone().build()), 0);
        assert_eq!(tf.observe(&base.clone().tcp_flags(TcpFlags::FIN | TcpFlags::ACK).build()), 1);
        assert_eq!(tf.end_epoch(), 0, "record already exported");
    }

    #[test]
    fn collisions_churn_records() {
        // A 1-slot table: every flow change evicts.
        let mut tf = TurboFlow::new(1);
        let a = PacketBuilder::new().src_port(1).build();
        let b = PacketBuilder::new().src_port(2).build();
        assert_eq!(tf.observe(&a), 0);
        assert_eq!(tf.observe(&b), 1);
        assert_eq!(tf.observe(&a), 1);
    }
}
