//! The Sonata baseline: exact exportation, but static compilation.
//!
//! Sonata compiles queries into the P4 program itself, so changing the
//! query set means recompiling and **reloading the switch** — forwarding
//! stops until the program is loaded and every forwarding-table rule is
//! restored (Fig. 10). Its steady-state export discipline is as precise as
//! Newton's (reports only when an intent fires), which is why both sit two
//! orders of magnitude below the per-packet exporters in Fig. 12.

use crate::ExportModel;
use newton_packet::Packet;
use newton_query::{Interpreter, Query};

/// The Fig. 10 outage model: reloading switch.p4-plus-queries wipes the
/// tables; forwarding resumes only after the program boots and all rules
/// are re-installed.
#[derive(Debug, Clone, Copy)]
pub struct RebootModel {
    /// Program load + pipeline bring-up, ms ("about 7.5 s outage").
    pub base_reboot_ms: f64,
    /// Per-TCAM-rule restore cost, ms.
    pub per_tcam_rule_ms: f64,
    /// Per-SRAM-rule restore cost, ms.
    pub per_sram_rule_ms: f64,
}

impl Default for RebootModel {
    fn default() -> Self {
        // Calibrated to Fig. 10: ~7.5 s at zero rules, ~30 s at 60 K rules.
        RebootModel { base_reboot_ms: 7_500.0, per_tcam_rule_ms: 0.42, per_sram_rule_ms: 0.33 }
    }
}

impl RebootModel {
    /// Forwarding outage (ms) for a query update that must restore
    /// `tcam_rules` + `sram_rules` forwarding entries.
    pub fn outage_ms(&self, tcam_rules: usize, sram_rules: usize) -> f64 {
        self.base_reboot_ms
            + self.per_tcam_rule_ms * tcam_rules as f64
            + self.per_sram_rule_ms * sram_rules as f64
    }

    /// Newton's outage for the same operation: none — rule updates never
    /// touch forwarding (§6.1).
    pub fn newton_outage_ms(&self) -> f64 {
        0.0
    }
}

/// Sonata's steady-state exporter: runs the query with exact semantics and
/// emits one report per key whose aggregate crosses the intent threshold
/// (evaluated per epoch, like the paper's 100 ms windows).
pub struct SonataExporter {
    interp: Interpreter,
}

impl SonataExporter {
    pub fn new(query: Query) -> Self {
        SonataExporter { interp: Interpreter::new(query) }
    }
}

impl ExportModel for SonataExporter {
    fn name(&self) -> &'static str {
        "Sonata"
    }

    fn observe(&mut self, pkt: &Packet) -> u64 {
        self.interp.observe(pkt);
        0
    }

    fn end_epoch(&mut self) -> u64 {
        self.interp.end_epoch().reported.len() as u64
    }

    fn message_bytes(&self) -> u64 {
        32 // key + aggregate + metadata
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newton_packet::{PacketBuilder, TcpFlags};
    use newton_query::catalog;

    #[test]
    fn outage_matches_paper_calibration() {
        let m = RebootModel::default();
        let at_zero = m.outage_ms(0, 0);
        assert!((7_000.0..8_000.0).contains(&at_zero), "base outage {at_zero} ms");
        let at_60k = m.outage_ms(30_000, 30_000);
        assert!((25_000.0..35_000.0).contains(&at_60k), "60K-rule outage {at_60k} ms ≈ 0.5 min");
        assert_eq!(m.newton_outage_ms(), 0.0);
    }

    #[test]
    fn outage_grows_linearly_in_rules() {
        let m = RebootModel::default();
        let d1 = m.outage_ms(10_000, 0) - m.outage_ms(0, 0);
        let d2 = m.outage_ms(20_000, 0) - m.outage_ms(10_000, 0);
        assert!((d1 - d2).abs() < 1e-9);
        assert!(m.per_tcam_rule_ms > m.per_sram_rule_ms, "TCAM restore is slower");
    }

    #[test]
    fn exporter_reports_once_per_key_per_epoch() {
        let mut s = SonataExporter::new(catalog::q1_new_tcp());
        let mut msgs = 0;
        for i in 0..200u16 {
            let p = PacketBuilder::new()
                .src_ip(i as u32)
                .dst_ip(7)
                .src_port(1000 + i)
                .tcp_flags(TcpFlags::SYN)
                .build();
            msgs += s.observe(&p);
        }
        msgs += s.end_epoch();
        assert_eq!(msgs, 1, "one victim, one report, despite 200 packets");
    }
}
