//! The comparison systems of the evaluation (Figs. 10, 12, 13).
//!
//! Each baseline is modelled at the granularity the figures need: **what
//! messages it sends to the monitoring plane per packet of workload**, and
//! for Sonata, **what a query update does to the forwarding plane**.
//! The models follow each system's published export discipline:
//!
//! | System | Export unit | Behaviour |
//! |---|---|---|
//! | Sonata | per-intent report | exact exportation like Newton, but updates recompile the P4 program → switch reboot + table restore ([`sonata::RebootModel`], Fig. 10) |
//! | TurboFlow | per-flow record | fixed-size flow table; collision/FIN/epoch-end evictions each export one record |
//! | \*Flow | grouped packet vector | per-flow GPV cache; a full GPV, a collision or epoch end exports one GPV |
//! | FlowRadar | encoded flowset | periodic export of the whole counting-table, packed into messages |
//! | Scream | sketch counters | periodic export of its sketch rows, packed into messages |
//!
//! All models implement [`ExportModel`] so the overhead benchmark treats
//! them uniformly.

pub mod flowradar;
pub mod scream;
pub mod sonata;
pub mod starflow;
pub mod turboflow;

pub use flowradar::FlowRadar;
pub use scream::Scream;
pub use sonata::{RebootModel, SonataExporter};
pub use starflow::StarFlow;
pub use turboflow::TurboFlow;

use newton_packet::Packet;

/// A monitoring system's export behaviour, as the overhead figures see it.
pub trait ExportModel {
    /// Human-readable system name (figure legend).
    fn name(&self) -> &'static str;

    /// Observe one packet; returns monitoring messages emitted *now*.
    fn observe(&mut self, pkt: &Packet) -> u64;

    /// Close the measurement epoch; returns messages emitted at the
    /// boundary (flushes, periodic exports due within the epoch).
    fn end_epoch(&mut self) -> u64;

    /// Approximate bytes per message (bandwidth accounting).
    fn message_bytes(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use newton_trace::{caida_like, Trace};

    fn run(model: &mut dyn ExportModel, trace: &Trace) -> (u64, u64) {
        let mut messages = 0;
        for epoch in trace.epochs(100) {
            for p in epoch {
                messages += model.observe(p);
            }
            messages += model.end_epoch();
        }
        (messages, trace.packets().len() as u64)
    }

    #[test]
    fn per_packet_exporters_scale_with_traffic_and_newton_like_does_not() {
        let trace = caida_like(3, 30_000);
        let mut tf = TurboFlow::default_model();
        let mut sf = StarFlow::default_model();
        let mut fr = FlowRadar::default_model();
        let (m_tf, n) = run(&mut tf, &trace);
        let (m_sf, _) = run(&mut sf, &trace);
        let (m_fr, _) = run(&mut fr, &trace);
        let r_tf = m_tf as f64 / n as f64;
        let r_sf = m_sf as f64 / n as f64;
        let r_fr = m_fr as f64 / n as f64;
        // *Flow exports GPVs (several per flow), TurboFlow one record per
        // flow; both far above FlowRadar's periodic encoded flowset.
        assert!(r_sf > r_tf * 0.8, "starflow {r_sf:.4} vs turboflow {r_tf:.4}");
        assert!(r_tf > 0.01, "turboflow ratio {r_tf:.4} should be packet-scale");
        assert!(r_fr < r_tf, "flowradar {r_fr:.4} must undercut per-flow export");
        assert!(r_fr > 0.001, "flowradar ~1%: {r_fr:.4}");
    }
}
