//! SCREAM: sketch resource allocation with periodic counter export.
//!
//! SCREAM dynamically allocates sketch memory across measurement tasks on
//! software-defined switches; its controller pulls the allocated sketch
//! counters every measurement interval to evaluate task accuracy. Like
//! FlowRadar the export volume is constant per unit time, but the pulled
//! state (multi-row sketches per task) is larger.

use crate::ExportModel;
use newton_packet::Packet;

/// The SCREAM export model.
pub struct Scream {
    /// Sketch rows allocated across tasks.
    pub rows: usize,
    /// Counters per row.
    pub width: usize,
    /// Counters packed per export message.
    pub counters_per_message: usize,
    /// Export (measurement) interval, ms.
    pub export_interval_ms: u64,
    /// Driver epoch, ms.
    pub epoch_ms: u64,
}

impl Scream {
    /// Default: 3 × 4096 sketch, pulled every 20 ms, 256 counters/message.
    pub fn default_model() -> Self {
        Scream {
            rows: 3,
            width: 4096,
            counters_per_message: 256,
            export_interval_ms: 20,
            epoch_ms: 100,
        }
    }
}

impl ExportModel for Scream {
    fn name(&self) -> &'static str {
        "SCREAM"
    }

    fn observe(&mut self, _pkt: &Packet) -> u64 {
        0
    }

    fn end_epoch(&mut self) -> u64 {
        let exports = self.epoch_ms / self.export_interval_ms.max(1);
        let per_export = (self.rows * self.width).div_ceil(self.counters_per_message) as u64;
        exports * per_export
    }

    fn message_bytes(&self) -> u64 {
        (self.counters_per_message * 4) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pulls_scale_with_sketch_size_not_traffic() {
        let mut s = Scream::default_model();
        // 5 exports × ceil(12288/256)=48 messages.
        assert_eq!(s.end_epoch(), 240);
        let mut bigger = Scream { width: 8192, ..Scream::default_model() };
        assert!(bigger.end_epoch() > s.end_epoch());
    }
}
