//! FlowRadar: periodically exported encoded flowsets.
//!
//! FlowRadar maintains an Invertible-Bloom-Lookup-style counting table of
//! fixed size (the paper's experiment: a 4096-cell register array) and
//! exports the *whole encoded table* every export interval, packed into
//! messages. Export volume is constant per unit time — independent of
//! traffic — which lands it around 1 % of raw packets at the paper's trace
//! rates, far above Newton/Sonata but below the per-packet exporters.

use crate::ExportModel;
use newton_packet::Packet;

/// The FlowRadar export model.
pub struct FlowRadar {
    /// Encoded-flowset cells (the register-array size).
    pub cells: usize,
    /// Cells packed per export message.
    pub cells_per_message: usize,
    /// Export period in milliseconds.
    pub export_interval_ms: u64,
    /// The measurement epoch length the driver uses (how many exports per
    /// epoch).
    pub epoch_ms: u64,
}

impl FlowRadar {
    /// The paper's configuration: 4096 cells, exporting every 25 ms,
    /// packed 256 cells per message, driven at 100 ms epochs.
    pub fn default_model() -> Self {
        FlowRadar { cells: 4096, cells_per_message: 256, export_interval_ms: 25, epoch_ms: 100 }
    }

    fn messages_per_export(&self) -> u64 {
        self.cells.div_ceil(self.cells_per_message) as u64
    }
}

impl ExportModel for FlowRadar {
    fn name(&self) -> &'static str {
        "FlowRadar"
    }

    fn observe(&mut self, _pkt: &Packet) -> u64 {
        0 // updates are in-ASIC; export is periodic
    }

    fn end_epoch(&mut self) -> u64 {
        let exports = self.epoch_ms / self.export_interval_ms.max(1);
        exports * self.messages_per_export()
    }

    fn message_bytes(&self) -> u64 {
        // Each cell: flow-xor + counters.
        (self.cells_per_message * 12) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newton_packet::PacketBuilder;

    #[test]
    fn export_volume_is_traffic_independent() {
        let mut a = FlowRadar::default_model();
        let mut b = FlowRadar::default_model();
        let p = PacketBuilder::new().build();
        for _ in 0..10 {
            a.observe(&p);
        }
        for _ in 0..10_000 {
            b.observe(&p);
        }
        assert_eq!(a.end_epoch(), b.end_epoch());
    }

    #[test]
    fn default_is_sixty_four_messages_per_epoch() {
        let mut fr = FlowRadar::default_model();
        // 4 exports per 100 ms epoch × 16 messages per export.
        assert_eq!(fr.end_epoch(), 64);
    }
}
