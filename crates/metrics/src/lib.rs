//! Live operational metrics for the Newton reproduction.
//!
//! The telemetry [`Journal`](../newton_telemetry) answers *what the model
//! did* — deterministically, keyed by modeled time. This crate answers
//! *how the service is doing right now*: wall-clock latencies, queue
//! occupancies, cache hit rates, process RSS. Everything here is
//! explicitly nondeterministic and lives strictly outside the journal;
//! the suite pins that the journal's bytes are identical with a registry
//! attached or not.
//!
//! ## Design
//!
//! * [`MetricsRegistry`] is a cheap-to-clone handle to a shared registry.
//!   **Registration** (naming a metric) takes a mutex; **updates** through
//!   the returned handles are single atomic instructions, lock-free and
//!   wait-free — safe to call from worker pools, producer threads, and
//!   connection threads concurrently.
//! * Handles ([`Counter`], [`Gauge`], [`MaxGauge`], [`Histogram`]) wrap an
//!   `Option<Arc<..>>`. The detached constructors ([`Counter::noop`] and
//!   friends) hold `None`, so an uninstrumented layer pays one pointer
//!   test per update site — and sites in generic code can eliminate even
//!   that with the [`MetricsGate`] pattern, mirroring the telemetry
//!   crate's `Telemetry::ENABLED`: guard update code with
//!   `if G::ENABLED { .. }` and the `MetricsOff` instantiation
//!   monomorphizes the whole branch away.
//! * [`Histogram`] buckets by `log2(value)`: 65 buckets cover the full
//!   `u64` range, bucket `i > 0` holding values in `[2^(i-1), 2^i)` and
//!   bucket 0 holding zeros. Counts, the value sum, and the exact maximum
//!   are all `u64` atomics, so merging two histograms (or two snapshots)
//!   is lossless integer addition — no floating point, no decay.
//!
//! Quantiles (p50/p90/p99) come from the bucket CDF: the reported value
//! is the upper bound of the bucket containing the target rank, clamped
//! to the exact tracked maximum. For identical observations this is
//! exact; for mixed observations it is an upper estimate within 2x, which
//! is the usual log-bucket contract.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log2 buckets: one for zero plus one per bit of `u64`.
pub const HIST_BUCKETS: usize = 65;

/// Compile-time metrics gate for generic instrumentation sites — the
/// moral twin of `newton_telemetry::Telemetry::ENABLED`. Code written as
/// `if G::ENABLED { handle.add(n) }` compiles to nothing at all when
/// instantiated with [`MetricsOff`].
pub trait MetricsGate {
    const ENABLED: bool;
}

/// Gate value: metrics updates run.
pub struct MetricsOn;
impl MetricsGate for MetricsOn {
    const ENABLED: bool = true;
}

/// Gate value: metrics updates monomorphize to no-ops.
pub struct MetricsOff;
impl MetricsGate for MetricsOff {
    const ENABLED: bool = false;
}

/// What a metric is, for rendering. `MaxGauge` renders as a gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    Counter,
    Gauge,
    Histogram,
}

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A detached counter: every update is a no-op.
    pub fn noop() -> Counter {
        Counter(None)
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Overwrite with a cumulative total maintained elsewhere (mirroring
    /// an existing monotonic stats struct into the registry). The caller
    /// guarantees monotonicity; the registry does not re-check it.
    #[inline]
    pub fn store_total(&self, total: u64) {
        if let Some(c) = &self.0 {
            c.store(total, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge that can move both ways. Stored as `u64`; `sub` saturates at
/// zero so a racy dec-before-inc interleaving cannot wrap.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    pub fn noop() -> Gauge {
        Gauge(None)
    }

    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(g) = &self.0 {
            g.fetch_add(n, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn sub(&self, n: u64) {
        if let Some(g) = &self.0 {
            let _ =
                g.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(n)));
        }
    }

    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// A gauge that only ratchets upward — high-water marks (peak RSS,
/// deepest queue seen).
#[derive(Debug, Clone, Default)]
pub struct MaxGauge(Option<Arc<AtomicU64>>);

impl MaxGauge {
    pub fn noop() -> MaxGauge {
        MaxGauge(None)
    }

    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.fetch_max(v, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// Shared storage of one histogram: 65 log2 bucket counts, the value sum,
/// and the exact maximum. All plain `u64` atomics, so concurrent
/// observers never lose an update and two histograms merge losslessly.
#[derive(Debug)]
struct HistCore {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistCore {
    fn default() -> Self {
        HistCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a value: 0 for 0, else `floor(log2(v)) + 1`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (`0`, then `2^i - 1`, capped at
/// `u64::MAX`).
pub fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A log2-bucketed histogram of `u64` observations (latencies in
/// nanoseconds, sizes in bytes).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistCore>>);

impl Histogram {
    pub fn noop() -> Histogram {
        Histogram(None)
    }

    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(v, Ordering::Relaxed);
            h.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Fold a snapshot (e.g. from another process's registry dump) into
    /// this histogram — lossless `u64` addition per bucket.
    pub fn merge(&self, snap: &HistogramSnapshot) {
        if let Some(h) = &self.0 {
            for (b, &n) in h.buckets.iter().zip(snap.buckets.iter()) {
                if n > 0 {
                    b.fetch_add(n, Ordering::Relaxed);
                }
            }
            h.sum.fetch_add(snap.sum, Ordering::Relaxed);
            h.max.fetch_max(snap.max, Ordering::Relaxed);
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.0 {
            None => HistogramSnapshot::default(),
            Some(h) => HistogramSnapshot {
                buckets: std::array::from_fn(|i| h.buckets[i].load(Ordering::Relaxed)),
                sum: h.sum.load(Ordering::Relaxed),
                max: h.max.load(Ordering::Relaxed),
            },
        }
    }
}

/// A point-in-time copy of a histogram's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HIST_BUCKETS],
    pub sum: u64,
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; HIST_BUCKETS], sum: 0, max: 0 }
    }
}

impl HistogramSnapshot {
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Lossless merge: bucket-wise `u64` addition, sum addition, max of
    /// maxes. `merge(a, b)` then quantile extraction equals extracting
    /// from the union of the underlying observations' buckets.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the `ceil(q * count)`-th smallest observation,
    /// clamped to the exact maximum. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// The value half of one registry entry.
#[derive(Debug, Clone)]
enum Slot {
    Scalar(Arc<AtomicU64>),
    Hist(Arc<HistCore>),
}

#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    kind: Kind,
    slot: Slot,
}

/// A metric's rendered value in [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone)]
pub enum MetricValue {
    Counter(u64),
    Gauge(u64),
    Histogram(Box<HistogramSnapshot>),
}

/// One metric in a registry snapshot.
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    pub name: String,
    pub help: String,
    pub value: MetricValue,
}

/// A shared, lock-free-on-update registry of named metrics.
///
/// Cloning is cheap (one `Arc`). Registration is idempotent by name: two
/// layers asking for the same counter get handles to the same storage,
/// which is what makes repeated `run`s and re-wirings safe.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    entries: Arc<Mutex<Vec<Entry>>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn scalar(&self, name: &str, help: &str, kind: Kind) -> Arc<AtomicU64> {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            match &e.slot {
                Slot::Scalar(c) => return Arc::clone(c),
                Slot::Hist(_) => panic!("metric {name:?} already registered as a histogram"),
            }
        }
        let cell = Arc::new(AtomicU64::new(0));
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            slot: Slot::Scalar(Arc::clone(&cell)),
        });
        cell
    }

    /// Register (or re-fetch) a counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        Counter(Some(self.scalar(name, help, Kind::Counter)))
    }

    /// Register (or re-fetch) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        Gauge(Some(self.scalar(name, help, Kind::Gauge)))
    }

    /// Register (or re-fetch) a high-water-mark gauge.
    pub fn max_gauge(&self, name: &str, help: &str) -> MaxGauge {
        MaxGauge(Some(self.scalar(name, help, Kind::Gauge)))
    }

    /// Register (or re-fetch) a histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            match &e.slot {
                Slot::Hist(h) => return Histogram(Some(Arc::clone(h))),
                Slot::Scalar(_) => panic!("metric {name:?} already registered as a scalar"),
            }
        }
        let core = Arc::new(HistCore::default());
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            kind: Kind::Histogram,
            slot: Slot::Hist(Arc::clone(&core)),
        });
        Histogram(Some(core))
    }

    /// Point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<MetricSnapshot> = entries
            .iter()
            .map(|e| MetricSnapshot {
                name: e.name.clone(),
                help: e.help.clone(),
                value: match (&e.slot, e.kind) {
                    (Slot::Scalar(c), Kind::Counter) => {
                        MetricValue::Counter(c.load(Ordering::Relaxed))
                    }
                    (Slot::Scalar(c), _) => MetricValue::Gauge(c.load(Ordering::Relaxed)),
                    (Slot::Hist(h), _) => MetricValue::Histogram(Box::new(HistogramSnapshot {
                        buckets: std::array::from_fn(|i| h.buckets[i].load(Ordering::Relaxed)),
                        sum: h.sum.load(Ordering::Relaxed),
                        max: h.max.load(Ordering::Relaxed),
                    })),
                },
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Current value of a scalar metric, for tests and gates.
    pub fn value(&self, name: &str) -> Option<u64> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.iter().find(|e| e.name == name).and_then(|e| match &e.slot {
            Slot::Scalar(c) => Some(c.load(Ordering::Relaxed)),
            Slot::Hist(_) => None,
        })
    }

    /// Snapshot of a histogram metric, for tests and gates.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.iter().find(|e| e.name == name).and_then(|e| match &e.slot {
            Slot::Hist(h) => Some(HistogramSnapshot {
                buckets: std::array::from_fn(|i| h.buckets[i].load(Ordering::Relaxed)),
                sum: h.sum.load(Ordering::Relaxed),
                max: h.max.load(Ordering::Relaxed),
            }),
            Slot::Scalar(_) => None,
        })
    }

    /// Render the registry in the Prometheus text exposition format:
    /// `# HELP` / `# TYPE` per metric, cumulative (`le`-labelled) buckets
    /// plus `_sum` / `_count` per histogram. Bucket counts are cumulative
    /// and therefore monotone by construction; only populated bucket
    /// boundaries (plus `+Inf`) are emitted to keep the 65-bucket range
    /// readable.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for m in self.snapshot() {
            let name = sanitize_name(&m.name);
            let _ = writeln!(out, "# HELP {name} {}", m.help.replace('\n', " "));
            match m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let last = h.buckets.iter().rposition(|&n| n > 0);
                    let mut cum = 0u64;
                    if let Some(last) = last {
                        for (i, &n) in h.buckets.iter().enumerate().take(last + 1) {
                            cum += n;
                            let _ =
                                writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", bucket_upper(i));
                        }
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
                    let _ = writeln!(out, "{name}_sum {}", h.sum);
                    let _ = writeln!(out, "{name}_count {cum}");
                }
            }
        }
        out
    }

    /// Render the registry as one JSON object — the same shape the
    /// `newtond` `metrics` op returns (counters, gauges, and histograms
    /// with quantiles), hand-rolled so benches and examples can dump it
    /// without a JSON dependency.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let snap = self.snapshot();
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for m in &snap {
            if let MetricValue::Counter(v) = m.value {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\"{}\":{v}", m.name);
            }
        }
        out.push_str("},\"gauges\":{");
        let mut first = true;
        for m in &snap {
            if let MetricValue::Gauge(v) = m.value {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\"{}\":{v}", m.name);
            }
        }
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for m in &snap {
            if let MetricValue::Histogram(h) = &m.value {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\
                     \"p99\":{}}}",
                    m.name,
                    h.count(),
                    h.sum,
                    h.max,
                    h.p50(),
                    h.p90(),
                    h.p99()
                );
            }
        }
        out.push_str("}}");
        out
    }
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; map everything else to
/// `_` (registry names use `.` and `-` freely).
fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect()
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`); 0 where unavailable. Poll it into a
/// [`MaxGauge`] to track a live high-water mark instead of a single
/// end-of-run read.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_the_u64_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HIST_BUCKETS {
            assert_eq!(bucket_index(bucket_upper(i)), i, "upper bound stays in its bucket");
        }
    }

    #[test]
    fn counters_gauges_and_max_gauges_update_atomically() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c", "a counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(reg.value("c"), Some(5));
        // Idempotent registration: same storage.
        reg.counter("c", "a counter").add(1);
        assert_eq!(c.get(), 6);
        let g = reg.gauge("g", "a gauge");
        g.add(3);
        g.sub(1);
        assert_eq!(g.get(), 2);
        g.sub(10);
        assert_eq!(g.get(), 0, "gauge sub saturates at zero");
        let m = reg.max_gauge("m", "a high-water mark");
        m.observe(7);
        m.observe(3);
        assert_eq!(m.get(), 7);
    }

    #[test]
    fn noop_handles_cost_nothing_and_report_zero() {
        let c = Counter::noop();
        c.add(10);
        assert_eq!(c.get(), 0);
        let h = Histogram::noop();
        h.observe(10);
        assert_eq!(h.snapshot().count(), 0);
        Gauge::noop().add(1);
        MaxGauge::noop().observe(1);
    }

    #[test]
    fn gate_pattern_monomorphizes_like_telemetry_enabled() {
        fn instrument<G: MetricsGate>(c: &Counter) -> bool {
            if G::ENABLED {
                c.add(1);
                return true;
            }
            false
        }
        let reg = MetricsRegistry::new();
        let c = reg.counter("gated", "gated counter");
        assert!(!instrument::<MetricsOff>(&c));
        assert_eq!(c.get(), 0, "disabled gate must not touch the counter");
        assert!(instrument::<MetricsOn>(&c));
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn histogram_quantiles_are_exact_for_known_sequences() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", "latency");
        // 100 observations of 100ns: every quantile is exactly 100
        // (bucket upper bound 127 clamps to the tracked max).
        for _ in 0..100 {
            h.observe(100);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.sum, 10_000);
        assert_eq!(s.max, 100);
        assert_eq!((s.p50(), s.p90(), s.p99()), (100, 100, 100));

        // 90 fast + 10 slow: p50/p90 land in the fast bucket, p99 in the
        // slow one.
        let h2 = reg.histogram("lat2", "latency");
        for _ in 0..90 {
            h2.observe(100);
        }
        for _ in 0..10 {
            h2.observe(100_000);
        }
        let s = h2.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.p50(), 127, "p50 is the fast bucket's upper bound");
        assert_eq!(s.p90(), 127, "rank 90 is still inside the fast bucket");
        assert_eq!(s.p99(), 100_000, "p99 reaches the slow bucket, clamped to max");
        assert_eq!(s.quantile(1.0), 100_000);
        assert_eq!(HistogramSnapshot::default().p50(), 0, "empty histogram quantiles are 0");
    }

    #[test]
    fn histogram_merge_is_lossless() {
        let reg = MetricsRegistry::new();
        let a = reg.histogram("a", "");
        let b = reg.histogram("b", "");
        for v in [1u64, 5, 5, 300] {
            a.observe(v);
        }
        for v in [2u64, 300, 40_000] {
            b.observe(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        // The merged snapshot equals observing the union directly.
        let u = reg.histogram("u", "");
        for v in [1u64, 5, 5, 300, 2, 300, 40_000] {
            u.observe(v);
        }
        assert_eq!(merged, u.snapshot());
        // Handle-level merge too.
        let c = reg.histogram("c", "");
        c.merge(&a.snapshot());
        c.merge(&b.snapshot());
        assert_eq!(c.snapshot(), u.snapshot());
    }

    #[test]
    fn updates_are_safe_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("t", "");
        let h = reg.histogram("th", "");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.snapshot().count(), 4000);
        assert_eq!(h.snapshot().max, 999);
    }

    #[test]
    fn prometheus_rendering_has_help_type_and_monotone_buckets() {
        let reg = MetricsRegistry::new();
        reg.counter("requests_total", "Requests served").add(3);
        reg.gauge("active", "Active connections").set(2);
        let h = reg.histogram("request_ns", "Request latency (ns)");
        for v in [10u64, 100, 100, 5000] {
            h.observe(v);
        }
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP requests_total Requests served"));
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total 3"));
        assert!(text.contains("# TYPE active gauge"));
        assert!(text.contains("# TYPE request_ns histogram"));
        assert!(text.contains("request_ns_sum 5210"));
        assert!(text.contains("request_ns_count 4"));
        assert!(text.contains("request_ns_bucket{le=\"+Inf\"} 4"));
        // Cumulative bucket counts must be nondecreasing in le order.
        let mut prev = 0u64;
        for line in text.lines().filter(|l| l.starts_with("request_ns_bucket")) {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= prev, "bucket counts must be cumulative: {text}");
            prev = n;
        }
        assert_eq!(prev, 4);
    }

    #[test]
    fn json_rendering_carries_quantiles() {
        let reg = MetricsRegistry::new();
        reg.counter("hits", "").add(2);
        let h = reg.histogram("lat", "");
        h.observe(64);
        let json = reg.render_json();
        assert!(json.contains("\"counters\":{\"hits\":2}"), "{json}");
        assert!(json.contains("\"lat\":{\"count\":1,\"sum\":64,\"max\":64"), "{json}");
    }

    #[test]
    fn peak_rss_is_plausible_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            assert!(rss > 1024 * 1024, "VmHWM should exceed 1 MiB, got {rss}");
        }
    }
}
