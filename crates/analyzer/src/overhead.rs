//! Monitoring-overhead accounting (Figs. 12/13).
//!
//! The paper's metric is "the ratio of the number of monitoring messages
//! against the number of raw packets". Every system — Newton and the
//! baselines — feeds its message count into an [`OverheadMeter`] so the
//! figures compare like for like.

/// Counts raw packets and monitoring messages for one (system, workload)
/// cell of Fig. 12.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverheadMeter {
    raw_packets: u64,
    messages: u64,
    message_bytes: u64,
    /// Packets the network dropped for lack of a route (failures,
    /// partitions) — traffic monitoring never saw and never will.
    unrouted: u64,
}

impl OverheadMeter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one raw (forwarded) packet.
    pub fn packet(&mut self) {
        self.raw_packets += 1;
    }

    /// Count `n` raw packets.
    pub fn packets(&mut self, n: u64) {
        self.raw_packets += n;
    }

    /// Count one monitoring message of `bytes` bytes.
    pub fn message(&mut self, bytes: u64) {
        self.messages += 1;
        self.message_bytes += bytes;
    }

    /// Count `n` packets dropped unrouted. They stay in `raw_packets` too
    /// (they entered the network); this tracks how many never came out.
    pub fn unrouted(&mut self, n: u64) {
        self.unrouted += n;
    }

    pub fn unrouted_packets(&self) -> u64 {
        self.unrouted
    }

    pub fn raw_packets(&self) -> u64 {
        self.raw_packets
    }

    pub fn messages(&self) -> u64 {
        self.messages
    }

    pub fn message_bytes(&self) -> u64 {
        self.message_bytes
    }

    /// Messages per raw packet — Fig. 12's y-axis.
    pub fn ratio(&self) -> f64 {
        if self.raw_packets == 0 {
            0.0
        } else {
            self.messages as f64 / self.raw_packets as f64
        }
    }

    /// Fold another meter into this one — used to combine per-epoch meters
    /// into a whole-run total.
    pub fn merge(&mut self, other: &OverheadMeter) {
        self.raw_packets += other.raw_packets;
        self.messages += other.messages;
        self.message_bytes += other.message_bytes;
        self.unrouted += other.unrouted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_is_messages_over_packets() {
        let mut m = OverheadMeter::new();
        m.packets(1000);
        for _ in 0..10 {
            m.message(64);
        }
        assert!((m.ratio() - 0.01).abs() < 1e-12);
        assert_eq!(m.message_bytes(), 640);
        m.unrouted(7);
        assert_eq!(m.unrouted_packets(), 7);
        assert_eq!(m.raw_packets(), 1000, "unrouted packets are not double-counted");
    }

    #[test]
    fn empty_meter_is_zero() {
        // A meter that saw no packets must not divide by zero, even if
        // messages somehow arrived (e.g. a repair span with no traffic).
        let mut m = OverheadMeter::new();
        assert_eq!(m.ratio(), 0.0);
        m.message(64);
        assert_eq!(m.ratio(), 0.0, "messages with zero packets still yield a finite ratio");
    }

    #[test]
    fn merge_folds_every_counter() {
        let mut total = OverheadMeter::new();
        let mut a = OverheadMeter::new();
        a.packets(100);
        a.message(64);
        a.unrouted(3);
        let mut b = OverheadMeter::new();
        b.packets(50);
        b.message(32);
        b.message(32);
        total.merge(&a);
        total.merge(&b);
        assert_eq!(total.raw_packets(), 150);
        assert_eq!(total.messages(), 3);
        assert_eq!(total.message_bytes(), 128);
        assert_eq!(total.unrouted_packets(), 3);
        // Merging an empty meter is the identity.
        total.merge(&OverheadMeter::default());
        assert_eq!(total.raw_packets(), 150);
    }

    #[test]
    fn mirrored_report_bytes_integrate_with_the_meter() {
        // The 32-byte mirror format is what the meter should be fed.
        let report = newton_dataplane::Report {
            query: 1,
            branch: 0,
            op_keys: 7,
            hash_result: 0,
            state_result: 40,
            global_result: 40,
        };
        let bytes = newton_dataplane::mirror::encode(&report);
        let mut m = OverheadMeter::new();
        m.packets(100);
        m.message(bytes.len() as u64);
        assert_eq!(m.message_bytes(), 32);
        assert!((m.ratio() - 0.01).abs() < 1e-12);
    }
}
