//! Detection-quality metrics against ground truth (Fig. 14).

use std::collections::HashSet;

/// Confusion counts and derived rates for one epoch's report set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionMetrics {
    pub true_positives: usize,
    pub false_positives: usize,
    pub false_negatives: usize,
}

impl DetectionMetrics {
    /// Compare a reported key set against the ground-truth key set.
    pub fn compare(reported: &HashSet<u64>, truth: &HashSet<u64>) -> Self {
        let tp = reported.intersection(truth).count();
        DetectionMetrics {
            true_positives: tp,
            false_positives: reported.len() - tp,
            false_negatives: truth.len() - tp,
        }
    }

    /// Recall — the paper's "accuracy": the fraction of true targets the
    /// system caught.
    pub fn accuracy(&self) -> f64 {
        let t = self.true_positives + self.false_negatives;
        if t == 0 {
            1.0
        } else {
            self.true_positives as f64 / t as f64
        }
    }

    /// Precision.
    pub fn precision(&self) -> f64 {
        let r = self.true_positives + self.false_positives;
        if r == 0 {
            1.0
        } else {
            self.true_positives as f64 / r as f64
        }
    }

    /// False-positive rate over a candidate-key universe of `universe`
    /// keys (FP / (FP + TN)); sketch collisions are the only FP source.
    pub fn fpr(&self, universe: usize) -> f64 {
        let negatives = universe.saturating_sub(self.true_positives + self.false_negatives);
        if negatives == 0 {
            0.0
        } else {
            self.false_positives as f64 / negatives as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.accuracy();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[u64]) -> HashSet<u64> {
        v.iter().copied().collect()
    }

    #[test]
    fn perfect_detection() {
        let m = DetectionMetrics::compare(&set(&[1, 2, 3]), &set(&[1, 2, 3]));
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.fpr(100), 0.0);
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn misses_lower_accuracy() {
        let m = DetectionMetrics::compare(&set(&[1]), &set(&[1, 2, 3, 4]));
        assert_eq!(m.accuracy(), 0.25);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.false_negatives, 3);
    }

    #[test]
    fn false_positives_raise_fpr() {
        let m = DetectionMetrics::compare(&set(&[1, 9, 8]), &set(&[1]));
        assert_eq!(m.false_positives, 2);
        assert!((m.fpr(101) - 0.02).abs() < 1e-12);
        assert_eq!(m.precision(), 1.0 / 3.0);
    }

    #[test]
    fn empty_sets_are_well_defined() {
        let m = DetectionMetrics::compare(&set(&[]), &set(&[]));
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.fpr(0), 0.0);
    }
}
