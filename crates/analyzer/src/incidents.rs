//! Incident tracking across epochs.
//!
//! Raw epoch reports are noisy — a flood that spans ten epochs produces
//! ten report sets. Operators think in *incidents*: a (query, key) pair
//! with a first-seen time, a last-seen time, and a duration. This module
//! folds per-epoch report sets into exactly that.

use newton_dataplane::QueryId;
use std::collections::HashMap;

/// One ongoing or closed incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Incident {
    pub query: QueryId,
    pub key: u64,
    /// Epoch index the incident was first reported.
    pub first_epoch: usize,
    /// Epoch index it was last reported.
    pub last_epoch: usize,
    /// How many epochs reported it (may be < the span if it flapped).
    pub epochs_reported: usize,
}

impl Incident {
    /// Whether the incident was still firing at `epoch`.
    pub fn active_at(&self, epoch: usize) -> bool {
        self.last_epoch == epoch
    }

    /// Span in epochs, inclusive.
    pub fn span(&self) -> usize {
        self.last_epoch - self.first_epoch + 1
    }
}

/// Folds per-epoch reports into per-(query, key) incidents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IncidentLog {
    incidents: HashMap<(QueryId, u64), Incident>,
    epoch: usize,
}

impl IncidentLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest one epoch's final report set for one query. Call once per
    /// (query, epoch); then [`IncidentLog::end_epoch`] advances the clock.
    pub fn observe_epoch(&mut self, query: QueryId, keys: impl IntoIterator<Item = u64>) {
        for key in keys {
            let e = self.incidents.entry((query, key)).or_insert(Incident {
                query,
                key,
                first_epoch: self.epoch,
                last_epoch: self.epoch,
                epochs_reported: 0,
            });
            if e.last_epoch != self.epoch || e.epochs_reported == 0 {
                e.epochs_reported += 1;
            }
            e.last_epoch = self.epoch;
        }
    }

    /// Advance the epoch clock.
    pub fn end_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Current epoch index.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// All incidents, ordered by first occurrence then key.
    pub fn incidents(&self) -> Vec<Incident> {
        let mut v: Vec<Incident> = self.incidents.values().copied().collect();
        v.sort_by_key(|i| (i.first_epoch, i.query, i.key));
        v
    }

    /// Incidents still firing in the most recent completed epoch.
    pub fn active(&self) -> Vec<Incident> {
        let last = self.epoch.saturating_sub(1);
        self.incidents().into_iter().filter(|i| i.active_at(last)).collect()
    }

    pub fn len(&self) -> usize {
        self.incidents.len()
    }

    pub fn is_empty(&self) -> bool {
        self.incidents.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spanning_reports_fold_into_one_incident() {
        let mut log = IncidentLog::new();
        for _ in 0..3 {
            log.observe_epoch(1, [0xBEEF]);
            log.end_epoch();
        }
        let incidents = log.incidents();
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].first_epoch, 0);
        assert_eq!(incidents[0].last_epoch, 2);
        assert_eq!(incidents[0].span(), 3);
        assert_eq!(incidents[0].epochs_reported, 3);
    }

    #[test]
    fn flapping_incident_counts_reported_epochs() {
        let mut log = IncidentLog::new();
        log.observe_epoch(1, [7]);
        log.end_epoch();
        log.end_epoch(); // silent epoch
        log.observe_epoch(1, [7]);
        log.end_epoch();
        let i = log.incidents()[0];
        assert_eq!(i.span(), 3);
        assert_eq!(i.epochs_reported, 2, "the silent middle epoch does not count");
    }

    #[test]
    fn active_reflects_the_latest_epoch_only() {
        let mut log = IncidentLog::new();
        log.observe_epoch(1, [1]);
        log.end_epoch();
        log.observe_epoch(1, [2]);
        log.end_epoch();
        let active = log.active();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].key, 2);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn queries_do_not_mix() {
        let mut log = IncidentLog::new();
        log.observe_epoch(1, [5]);
        log.observe_epoch(2, [5]);
        log.end_epoch();
        assert_eq!(log.len(), 2, "same key under two queries = two incidents");
    }

    #[test]
    fn duplicate_keys_within_an_epoch_count_once() {
        let mut log = IncidentLog::new();
        log.observe_epoch(1, [9, 9, 9]);
        log.end_epoch();
        assert_eq!(log.incidents()[0].epochs_reported, 1);
    }
}
