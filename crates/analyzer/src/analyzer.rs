//! Report ingestion and epoch-end completion of deferred query parts.

use newton_compiler::{AnalyzerTask, ProbeSpec, QueryPlan};
use newton_dataplane::{ModuleAddr, QueryId, Report};
use newton_packet::FieldVector;
use newton_query::ast::MergeOp;
use newton_sketch::{FastMap, FastSet, HashFn};

/// How the analyzer reads a switch register: given the query, the probe's
/// CQE slice index, the 𝕊 instance address within that slice, and a
/// register index, return the value, or `None` if unreadable. The caller
/// maps (query, slice, address) to physical switches — trivially on one
/// switch, through the placement for sliced deployments (summing over the
/// switches that hold the slice, since a key's counts may split across
/// traffic entry points).
pub type RegisterReader<'a> = dyn Fn(QueryId, usize, ModuleAddr, usize) -> Option<u32> + 'a;

/// The software analyzer for a set of installed queries.
#[derive(Debug, Default)]
pub struct Analyzer {
    plans: FastMap<QueryId, QueryPlan>,
    /// Candidate keys reported by each query's driver branch this epoch.
    candidates: FastMap<QueryId, FastSet<u64>>,
    /// Raw report count this epoch (overhead accounting).
    reports_seen: u64,
}

impl Analyzer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an installed query's plan (the analyzer's "schema").
    pub fn register(&mut self, id: QueryId, plan: QueryPlan) {
        self.plans.insert(id, plan);
    }

    /// Forget a removed query.
    pub fn unregister(&mut self, id: QueryId) {
        self.plans.remove(&id);
        self.candidates.remove(&id);
    }

    /// Ingest one mirrored report.
    pub fn ingest(&mut self, report: &Report) {
        self.reports_seen += 1;
        let Some(plan) = self.plans.get(&report.query) else {
            return;
        };
        let field = plan.branches[plan.driver as usize].report_field;
        let key = FieldVector(report.op_keys).get(field);
        self.candidates.entry(report.query).or_default().insert(key);
    }

    /// Reports ingested this epoch.
    pub fn reports_seen(&self) -> u64 {
        self.reports_seen
    }

    /// Candidate keys of one query (before epoch-end checks).
    pub fn candidates(&self, id: QueryId) -> FastSet<u64> {
        self.candidates.get(&id).cloned().unwrap_or_default()
    }

    /// Close the epoch: apply every deferred task by probing switch state,
    /// returning the final per-query report sets. All per-epoch analyzer
    /// state resets.
    ///
    /// Candidate sets are *moved* into the output (not cloned): the epoch
    /// boundary is on the critical path between delivery batches, and the
    /// sets can hold thousands of keys under attack traffic.
    pub fn end_epoch(&mut self, read: &RegisterReader<'_>) -> FastMap<QueryId, FastSet<u64>> {
        let Analyzer { plans, candidates, reports_seen } = self;
        let mut out = FastMap::default();
        for (&id, plan) in plans.iter() {
            let mut keys = candidates.remove(&id).unwrap_or_default();
            for task in &plan.tasks {
                match *task {
                    AnalyzerTask::ProbeCheck { branch, cmp, value } => {
                        let probes = &plan.branches[branch as usize].probes;
                        keys.retain(|&k| {
                            probe_min(id, probes, k, read)
                                .map(|v| cmp.eval(v as u64, value))
                                .unwrap_or(false)
                        });
                    }
                    AnalyzerTask::ProbeMerge { branch: _, op, cmp, value } => {
                        // Cross-packet merge: probe EVERY branch's aggregate
                        // for the candidate key and fold exactly as the
                        // merge defines (the report only proves the driver
                        // crossed its threshold; the fold needs values).
                        keys.retain(|&k| {
                            let mut vals = plan
                                .branches
                                .iter()
                                .map(|b| probe_min(id, &b.probes, k, read).map(|v| v as u64));
                            let Some(Some(first)) = vals.next() else { return false };
                            let folded = vals.try_fold(first, |acc, v| {
                                v.map(|v| match op {
                                    MergeOp::Min => acc.min(v),
                                    MergeOp::Max => acc.max(v),
                                    MergeOp::Sum => acc.saturating_add(v),
                                    MergeOp::Diff => acc.saturating_sub(v),
                                })
                            });
                            folded.map(|f| cmp.eval(f, value)).unwrap_or(false)
                        });
                    }
                    AnalyzerTask::EpochThreshold { branch, cmp, value } => {
                        let probes = &plan.branches[branch as usize].probes;
                        keys.retain(|&k| {
                            probe_min(id, probes, k, read)
                                .map(|v| cmp.eval(v as u64, value))
                                .unwrap_or(false)
                        });
                    }
                }
            }
            out.insert(id, keys);
        }
        candidates.clear();
        *reports_seen = 0;
        out
    }
}

/// Probe one branch's aggregate for a key: re-hash per row, read each 𝕊
/// register, take the row minimum (the Count-Min estimate). `None` if the
/// branch has no probes or a register was unreadable.
pub fn probe_min(
    query: QueryId,
    probes: &[ProbeSpec],
    key_value: u64,
    read: &RegisterReader<'_>,
) -> Option<u32> {
    if probes.is_empty() {
        return None;
    }
    let mut min = u32::MAX;
    for p in probes {
        let key_vec = ((key_value as u128) << p.key_field.shift()) & p.key_mask;
        let idx = HashFn::new(p.seed, p.range).hash(key_vec).wrapping_add(p.offset) as usize;
        min = min.min(read(query, p.slice, p.s_addr, idx)?);
    }
    Some(min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use newton_compiler::{compile, CompilerConfig};
    use newton_dataplane::{PipelineConfig, Switch};
    use newton_packet::{PacketBuilder, Protocol, TcpFlags};
    use newton_query::catalog;

    /// Full single-switch Q9 pipeline + analyzer: DNS receivers that never
    /// open TCP connections are flagged; those that do are cleared by the
    /// epoch-end probe of the TCP branch.
    #[test]
    fn q9_probe_check_end_to_end() {
        let q = catalog::q9_dns_no_tcp();
        let compiled = compile(&q, 9, &CompilerConfig::default());
        let mut sw = Switch::new(PipelineConfig::default());
        sw.install(&compiled.rules).unwrap();
        let mut analyzer = Analyzer::new();
        analyzer.register(compiled.id, compiled.plan.clone());

        let silent = 0x0A00_1111u32;
        let normal = 0x0A00_2222u32;
        let dns_to = |host: u32| {
            PacketBuilder::new()
                .src_ip(0x0808_0808)
                .dst_ip(host)
                .src_port(53)
                .dst_port(5555)
                .protocol(Protocol::Udp)
                .build()
        };
        for host in [silent, normal] {
            for r in sw.process(&dns_to(host), None).reports {
                analyzer.ingest(&r);
            }
        }
        // `normal` then opens connections — more than POLLUTION_SLACK of
        // them: the probe's upper bound is widened by the slack so that
        // sketch-row pollution cannot fake TCP activity for a truly silent
        // host, which means a count at or below the slack reads as silence.
        for port in 0..=newton_compiler::POLLUTION_SLACK as u16 {
            let syn = PacketBuilder::new()
                .src_ip(normal)
                .dst_ip(0xAC10_0001)
                .src_port(40_000 + port)
                .tcp_flags(TcpFlags::SYN)
                .build();
            for r in sw.process(&syn, None).reports {
                analyzer.ingest(&r);
            }
        }

        assert_eq!(analyzer.candidates(9).len(), 2, "both hosts are candidates");
        let results = analyzer.end_epoch(&|_q, _slice, addr, idx| sw.read_register(addr, idx));
        let flagged = &results[&9];
        assert!(flagged.contains(&(silent as u64)), "silent host must be flagged");
        assert!(!flagged.contains(&(normal as u64)), "connecting host must be cleared");
    }

    /// Q8 end-to-end: the And-merge's byte-volume side resolves by probe.
    #[test]
    fn q8_probe_check_filters_busy_servers() {
        let q = catalog::q8_slowloris();
        let compiled = compile(&q, 8, &CompilerConfig::default());
        let mut sw = Switch::new(PipelineConfig::default());
        sw.install(&compiled.rules).unwrap();
        let mut analyzer = Analyzer::new();
        analyzer.register(compiled.id, compiled.plan.clone());

        let victim = 0xAC10_0050u32;
        let busy = 0xAC10_0060u32;
        for i in 0..catalog::thresholds::SLOWLORIS_CONNS as u16 + 5 {
            // Slowloris: tiny packets from distinct connections.
            let p = PacketBuilder::new()
                .src_ip(0x0A00_0000 + i as u32)
                .dst_ip(victim)
                .src_port(3000 + i)
                .dst_port(80)
                .tcp_flags(TcpFlags::ACK)
                .wire_len(64)
                .build();
            for r in sw.process(&p, None).reports {
                analyzer.ingest(&r);
            }
            // Busy server: same connection count, full-size packets.
            let p = PacketBuilder::new()
                .src_ip(0x0B00_0000 + i as u32)
                .dst_ip(busy)
                .src_port(4000 + i)
                .dst_port(80)
                .tcp_flags(TcpFlags::ACK)
                .wire_len(1500)
                .build();
            for r in sw.process(&p, None).reports {
                analyzer.ingest(&r);
            }
        }
        let results = analyzer.end_epoch(&|_q, _slice, addr, idx| sw.read_register(addr, idx));
        let flagged = &results[&8];
        assert!(flagged.contains(&(victim as u64)), "slowloris victim flagged");
        assert!(!flagged.contains(&(busy as u64)), "busy server cleared by byte probe");
    }

    #[test]
    fn unknown_reports_are_ignored() {
        let mut analyzer = Analyzer::new();
        analyzer.ingest(&Report {
            query: 99,
            branch: 0,
            op_keys: 0,
            hash_result: 0,
            state_result: 0,
            global_result: 0,
        });
        assert_eq!(analyzer.reports_seen(), 1);
        assert!(analyzer.candidates(99).is_empty());
    }

    #[test]
    fn epoch_end_resets_state() {
        let q = catalog::q1_new_tcp();
        let compiled = compile(&q, 1, &CompilerConfig::default());
        let mut analyzer = Analyzer::new();
        analyzer.register(compiled.id, compiled.plan.clone());
        analyzer.ingest(&Report {
            query: 1,
            branch: 0,
            op_keys: newton_packet::Field::DstIp.mask()
                & (0x7u128 << newton_packet::Field::DstIp.shift()),
            hash_result: 0,
            state_result: 40,
            global_result: 40,
        });
        assert_eq!(analyzer.candidates(1).len(), 1);
        let r = analyzer.end_epoch(&|_, _, _, _| Some(0));
        assert_eq!(r[&1].len(), 1, "Q1 has no deferred tasks; candidates pass through");
        assert!(analyzer.candidates(1).is_empty(), "epoch state cleared");
        assert_eq!(analyzer.reports_seen(), 0);
    }

    #[test]
    fn probe_min_takes_row_minimum() {
        let probes = vec![
            newton_compiler::ProbeSpec {
                slice: 0,
                s_addr: ModuleAddr { stage: 0, slot: 2 },
                seed: 1,
                range: 16,
                offset: 0,
                key_field: newton_packet::Field::DstIp,
                key_mask: newton_packet::Field::DstIp.mask(),
            },
            newton_compiler::ProbeSpec {
                slice: 0,
                s_addr: ModuleAddr { stage: 1, slot: 2 },
                seed: 2,
                range: 16,
                offset: 0,
                key_field: newton_packet::Field::DstIp,
                key_mask: newton_packet::Field::DstIp.mask(),
            },
        ];
        let v =
            probe_min(1, &probes, 42, &|_, _, addr, _| Some(if addr.stage == 0 { 9 } else { 5 }));
        assert_eq!(v, Some(5));
        assert_eq!(probe_min(1, &probes, 42, &|_, _, _, _| None), None);
        assert_eq!(probe_min(1, &[], 42, &|_, _, _, _| Some(1)), None);
    }
}
