//! The software analyzer: the CPU half of Newton.
//!
//! The data plane mirrors reports for whatever it can decide; the analyzer
//! finishes the rest (§7: non-monotone thresholds, cross-packet merges) by
//! **probing switch registers at epoch end** through the compiled plan's
//! [`ProbeSpec`]s — re-hashing candidate keys exactly as the installed ℍ
//! rules do and reading the 𝕊 arrays. It also measures what the
//! evaluation needs: detection quality against ground truth (Fig. 14) and
//! monitoring overhead in messages per raw packet (Figs. 12/13).
//!
//! [`ProbeSpec`]: newton_compiler::ProbeSpec

pub mod accuracy;
pub mod analyzer;
pub mod incidents;
pub mod overhead;

pub use accuracy::DetectionMetrics;
pub use analyzer::{Analyzer, RegisterReader};
pub use incidents::{Incident, IncidentLog};
pub use overhead::OverheadMeter;
