//! Concurrent-query resource multiplexing (Fig. 16).
//!
//! With `n` concurrent clones of one query, three deployment models differ:
//!
//! * **Sonata** chains the queries in one P4 program: tables and stages
//!   both grow linearly with `n`.
//! * **S-Newton** — the clones monitor the *same* traffic, so Newton chains
//!   them: each clone needs its own module instances (a packet walks all of
//!   them), so modules and stages grow linearly, like Sonata.
//! * **P-Newton** — the clones monitor *different* traffic (`newton_init`
//!   dispatches disjoint slices), so every clone reuses the *same* module
//!   instances with its own rules: module/stage usage stays constant and
//!   only the rule count grows (bounded by the 256-rule module capacity).

use crate::compose::{compose, OptLevel};
use crate::decompose::decompose_query;
use crate::sonata;
use crate::CompilerConfig;
use newton_query::Query;

/// Modules/stages/rules needed by `n` concurrent clones under one model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcurrentCost {
    pub modules: usize,
    pub stages: usize,
    /// Total module rules across clones.
    pub rules: usize,
}

/// Resource usage of one compiled clone.
fn one(query: &Query, config: &CompilerConfig) -> (usize, usize, usize) {
    let d = decompose_query(query, config);
    let c = compose(query, &d, OptLevel::full());
    // Rules ≈ modules (each module instance holds one rule per clone; ℝ
    // gates hold two). Count from the actual generated rule set.
    let (rules, _) = crate::rulegen::generate_rules(query, 1, &d, &c, config);
    (c.modules(), c.stages(), rules.module_rule_count())
}

/// S-Newton: `n` clones over the same traffic, chained.
pub fn s_newton(query: &Query, n: usize, config: &CompilerConfig) -> ConcurrentCost {
    let (m, s, r) = one(query, config);
    ConcurrentCost { modules: m * n, stages: s * n, rules: r * n }
}

/// P-Newton: `n` clones over disjoint traffic, multiplexing module
/// instances.
pub fn p_newton(query: &Query, n: usize, config: &CompilerConfig) -> ConcurrentCost {
    let (m, s, r) = one(query, config);
    ConcurrentCost { modules: m, stages: s, rules: r * n }
}

/// Sonata: `n` clones chained in one program.
pub fn sonata_chained(query: &Query, n: usize) -> ConcurrentCost {
    let c = sonata::estimate(query);
    ConcurrentCost { modules: c.tables * n, stages: c.stages * n, rules: c.tables * n }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newton_query::catalog;

    #[test]
    fn p_newton_is_constant_in_modules_and_stages() {
        let cfg = CompilerConfig::default();
        let q = catalog::q4_port_scan();
        let one = p_newton(&q, 1, &cfg);
        let hundred = p_newton(&q, 100, &cfg);
        assert_eq!(one.modules, hundred.modules);
        assert_eq!(one.stages, hundred.stages);
        assert_eq!(hundred.rules, one.rules * 100);
    }

    #[test]
    fn s_newton_and_sonata_grow_linearly() {
        let cfg = CompilerConfig::default();
        let q = catalog::q4_port_scan();
        for n in [1usize, 10, 50] {
            assert_eq!(s_newton(&q, n, &cfg).stages, n * s_newton(&q, 1, &cfg).stages);
            assert_eq!(sonata_chained(&q, n).stages, n * sonata_chained(&q, 1).stages);
        }
    }

    #[test]
    fn p_newton_beats_both_at_scale() {
        let cfg = CompilerConfig::default();
        let q = catalog::q4_port_scan();
        let p = p_newton(&q, 100, &cfg);
        assert!(p.modules < s_newton(&q, 100, &cfg).modules / 10);
        assert!(p.modules < sonata_chained(&q, 100).modules / 10);
    }
}
