//! The Newton compiler: queries → module rules (§4.3).
//!
//! Compilation has two steps, exactly as the paper describes:
//!
//! 1. **Primitive decomposition** ([`decompose`]): each `filter` / `map` /
//!    `distinct` / `reduce` primitive lowers to a short sequence of module
//!    specifications (one or several 𝕂/ℍ/𝕊/ℝ suites — `reduce` uses
//!    several suites for a multi-array Count-Min, `distinct` for a
//!    multi-array Bloom filter, Fig. 3).
//! 2. **Module rule composition** ([`mod@compose`]): Algorithm 1 with its three
//!    optimizations —
//!    * **Opt.1** front filters over 5-tuple/flags move into `newton_init`,
//!    * **Opt.2** unused modules (e.g. `map`'s ℍ/𝕊/ℝ) and redundant 𝕂s
//!      (consecutive primitives with identical operation keys) are removed,
//!    * **Opt.3** vertical composition: consecutive primitives alternate
//!      between the two metadata sets so their modules share stages in the
//!      compact layout.
//!
//! [`rulegen`] then emits concrete, installable [`RuleSet`]s, and [`plan`]
//! records what the software analyzer must finish (non-monotone thresholds
//! and cross-packet merges — the parts the paper defers to CPU).
//!
//! [`sonata`] estimates the table/stage cost of the Sonata baseline for the
//! same query (Fig. 15 comparison), and [`concurrent`] computes the
//! resource-multiplexing numbers of Fig. 16.
//!
//! [`RuleSet`]: newton_dataplane::RuleSet

pub mod cache;
pub mod compose;
pub mod concurrent;
pub mod decompose;
pub mod plan;
pub mod rulegen;
pub mod slicing;
pub mod sonata;

pub use cache::{CacheStats, CompileCache};
pub use compose::{compose, compose_naive_executable, retarget_to_naive, Composition, OptLevel};
pub use concurrent::{p_newton, s_newton, sonata_chained, ConcurrentCost};
pub use decompose::{decompose_query, ModuleRole, ModuleSpec, SketchPolicy, POLLUTION_SLACK};
pub use plan::{
    stats_for, AnalyzerTask, BranchPlan, Compilation, CompileStats, ProbeSpec, QueryPlan,
};
pub use rulegen::generate_rules;
pub use slicing::{compile_sliced, SlicedCompilation};
pub use sonata::{estimate as sonata_estimate, SonataCost};

use newton_dataplane::QueryId;
use newton_query::Query;

/// Compiler configuration: the data-plane target description plus sketch
/// depths.
#[derive(Debug, Clone, Copy)]
pub struct CompilerConfig {
    /// Register count allotted to this query per 𝕊 array (ℍ's hash
    /// range). When several queries share a pipeline, each gets a slice of
    /// the physical arrays (§4.1: "flexible register allocation among
    /// different queries").
    pub registers_per_array: u32,
    /// First register of this query's slice within the physical arrays
    /// (added to every ℍ output).
    pub register_offset: u32,
    /// Bloom-filter arrays for `distinct` in single-branch queries.
    pub bf_hashes: usize,
    /// Count-Min rows for `reduce` in single-branch queries.
    pub cm_depth: usize,
    /// Base seed for the hash family.
    pub seed: u64,
}

impl Default for CompilerConfig {
    fn default() -> Self {
        CompilerConfig {
            registers_per_array: 4096,
            register_offset: 0,
            bf_hashes: 3,
            cm_depth: 2,
            seed: 0x5EED,
        }
    }
}

/// Compile a query with all optimizations enabled.
///
/// Returns the installable rules, the analyzer plan, and the per-opt-level
/// statistics (Fig. 15).
pub fn compile(query: &Query, id: QueryId, config: &CompilerConfig) -> Compilation {
    let decomp = decompose_query(query, config);
    let composition = compose(query, &decomp, OptLevel::full());
    let stats = CompileStats::collect(query, &decomp, config);
    let (rules, plan) = generate_rules(query, id, &decomp, &composition, config);
    Compilation { query_name: query.name.clone(), id, rules, plan, stats, composition }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newton_query::catalog;

    #[test]
    fn all_catalog_queries_compile() {
        let cfg = CompilerConfig::default();
        for (i, q) in catalog::all_queries().iter().enumerate() {
            let c = compile(q, i as QueryId + 1, &cfg);
            assert!(c.rules.module_rule_count() > 0, "{}: no module rules", q.name);
            assert!(
                !c.rules.init.is_empty() || q.name.contains("spreader"),
                "{}: expected init rules",
                q.name
            );
        }
    }

    #[test]
    fn optimization_reduces_modules_and_stages() {
        // The paper: ≥ 42.4% module reduction and ≥ 69.7% stage reduction
        // across the 9 queries; require substantial reductions here.
        let cfg = CompilerConfig::default();
        for q in catalog::all_queries() {
            let stats = CompileStats::collect(&q, &decompose_query(&q, &cfg), &cfg);
            let m_red = 1.0 - stats.final_modules() as f64 / stats.naive_modules() as f64;
            let s_red = 1.0 - stats.final_stages() as f64 / stats.naive_stages() as f64;
            assert!(m_red >= 0.30, "{}: module reduction {m_red:.2} too small", q.name);
            assert!(s_red >= 0.50, "{}: stage reduction {s_red:.2} too small", q.name);
        }
    }

    #[test]
    fn optimized_queries_fit_a_tofino() {
        // "Newton occupies no more than 10 stages for all the 9 queries."
        let cfg = CompilerConfig::default();
        for q in catalog::all_queries() {
            let c = compile(&q, 1, &cfg);
            assert!(
                c.composition.stages() <= 12,
                "{}: {} stages exceed a 12-stage pipeline",
                q.name,
                c.composition.stages()
            );
        }
    }
}
