//! Step 1: query primitive decomposition (§4.1, Fig. 3).
//!
//! Each primitive lowers to module specifications. A [`ModuleSpec`] is a
//! *logical* module occurrence: which kind, what role (the rule it will
//! carry), which branch/primitive it came from. Composition (step 2)
//! decides placement, set assignment and removal.
//!
//! Sketch shape policy: a **single-branch** query may spend the global
//! result on multi-array sketches (a `bf_hashes`-array Bloom filter for
//! `distinct`, a `cm_depth`-row Count-Min for `reduce`), because nothing
//! else contends for the accumulator. A **multi-branch** query reserves the
//! global result for merging branch results (Fig. 6), so each branch uses
//! single-array sketches — exactly the structure Fig. 6 shows.

use crate::plan::AnalyzerTask;
use crate::CompilerConfig;
use newton_dataplane::{ModuleKind, SetId};
use newton_packet::Field;
use newton_query::ast::{
    keys_mask, CmpOp, Merge, MergeOp, Predicate, Primitive, Query, ReduceFunc,
};

/// Maximum per-packet increment of a byte-volume reduce — the report
/// window width for sum-threshold crossing detection.
pub const MAX_WIRE_LEN: u32 = 1514;

/// Slack absorbing sketch-row pollution at detection-critical readings. A
/// key's own counter advances by at most one step per packet, but its
/// *reading* comes from hash rows shared with every other key: traffic
/// that collides in all rows between two of the key's packets can advance
/// the reading by several steps at once — stepping over an exact-width
/// report window, or lifting a truly-zero count above an exact upper
/// bound. Two steps cover the observed jump sizes.
///
/// Applied only where pollution was observed to lose real detections and
/// the cost is bounded: the data-plane merge threshold (at most
/// `1 + POLLUTION_SLACK` mirrors per crossing key, merged queries only)
/// and epoch-end analyzer probes (no messages at all). Per-branch crossing
/// windows stay exact — they fire for every query's every crossing key,
/// where any widening multiplies the network-wide mirroring rate that
/// Fig. 12 bounds to two orders below the mirror-everything baselines.
pub const POLLUTION_SLACK: u32 = 2;

/// What rule a module occurrence will carry.
#[derive(Debug, Clone, PartialEq)]
pub enum ModuleRole {
    /// 𝕂: mask the global field vector.
    SelectKeys { mask: u128 },
    /// ℍ: hash the operation keys into a register index.
    HashKeys { seed: u64, range: u32 },
    /// ℍ in direct mode: a key field's value becomes the result.
    HashDirect { field: Field },
    /// 𝕊: pass the hash result through (stateless suites).
    StatePass,
    /// 𝕊: `reg += operand` (counter / byte sum).
    StateAdd { field: Option<Field> },
    /// 𝕊: `reg = max(reg, field)` (running maxima).
    StateMax { field: Field },
    /// 𝕊: `old = reg; reg |= 1` (Bloom bit).
    StateOr,
    /// ℝ: equality check of a filter (`state == value`), else stop branch.
    FilterCheck { value: u32 },
    /// ℝ: `global = min(global, state)` — accumulate a sketch row.
    RowMin,
    /// ℝ: multi-array distinct freshness check — `global == 0` means fresh
    /// (continue, reset global), else stop branch.
    DistinctCheckGlobal,
    /// ℝ: single-array distinct freshness check — `state == 0` (the old
    /// bit) means fresh, else stop branch.
    DistinctCheckState,
    /// ℝ: threshold with report. Matches `[lo, hi]` on the state or global
    /// result; on hit: report (if `report`); below: stop branch if
    /// `stop_below`.
    Threshold { lo: u32, hi: u32, on_global: bool, report: bool, stop_below: bool },
    /// ℝ: first merge step — `global = state` (branch 0's result).
    MergeSet,
    /// ℝ: accumulate another branch into the merge (`min` on data plane).
    MergeAccum,
    /// Placeholder for an unused module of a suite (naïve accounting only;
    /// Opt.2 removes it).
    Unused,
}

impl ModuleRole {
    /// Whether this ℝ role reads or writes the global result — such roles
    /// must keep their relative stage order.
    pub fn touches_global(&self) -> bool {
        matches!(
            self,
            ModuleRole::RowMin
                | ModuleRole::DistinctCheckGlobal
                | ModuleRole::MergeSet
                | ModuleRole::MergeAccum
                | ModuleRole::Threshold { on_global: true, .. }
        )
    }
}

/// One logical module occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleSpec {
    pub branch: u8,
    /// Index of the source primitive within the branch (merge modules use
    /// the branch's primitive count).
    pub prim_idx: usize,
    pub kind: ModuleKind,
    pub role: ModuleRole,
    /// Metadata set; assigned during composition (Opt.3), `Set1` before.
    pub set: SetId,
    /// Sketch row within the primitive (0 for stateless suites) — rows of
    /// one sketch are independent and may interleave stages.
    pub row: usize,
    /// Global-result serialization index (see [`ModuleRole::touches_global`]).
    pub global_order: Option<usize>,
}

/// Sketch shape chosen for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchPolicy {
    /// Bloom arrays per `distinct`.
    pub bf_rows: usize,
    /// Count-Min rows per `reduce`.
    pub cm_rows: usize,
}

impl SketchPolicy {
    /// Policy for a query: multi-array sketches when nothing contends for
    /// the global accumulator — single-branch queries, and multi-branch
    /// queries whose branches consume disjoint packets (e.g. Q9's UDP vs
    /// TCP branches) and merge on the analyzer. Same-packet branches
    /// (Q6's data-plane merge, Q8's shared filters) stay single-row, the
    /// Fig. 6 structure.
    pub fn for_query(query: &Query, config: &CompilerConfig) -> SketchPolicy {
        let multi =
            query.branches.len() == 1 || (query.branches_packet_disjoint() && !dp_mergeable(query));
        if multi {
            SketchPolicy { bf_rows: config.bf_hashes.max(1), cm_rows: config.cm_depth.max(1) }
        } else {
            SketchPolicy { bf_rows: 1, cm_rows: 1 }
        }
    }
}

/// Whether the query's merge runs on the data plane (see `decompose_query`).
fn dp_mergeable(query: &Query) -> bool {
    matches!(
        &query.merge,
        Some(Merge::Combine { op: MergeOp::Min, cmp, .. })
            if cmp.is_monotone() && query.mergeable_on_data_plane()
    )
}

/// The decomposition of a whole query.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// All module occurrences, in logical execution order.
    pub specs: Vec<ModuleSpec>,
    /// Per-branch count of front filters replaceable by `newton_init`.
    pub front_filters: Vec<usize>,
    /// Analyzer-side work recorded during lowering.
    pub tasks: Vec<AnalyzerTask>,
    /// The sketch policy used.
    pub policy: SketchPolicy,
}

/// Shift a predicate's comparison value into field-aligned position
/// (matching what ℍ-direct over masked keys produces).
fn shifted_value(p: &Predicate) -> u32 {
    (p.value << (p.expr.field.width() - p.expr.prefix)) as u32
}

/// Row seed for the hash family.
fn row_seed(config: &CompilerConfig, branch: u8, prim: usize, row: usize) -> u64 {
    config
        .seed
        .wrapping_add(branch as u64 * 7919)
        .wrapping_add(prim as u64 * 131)
        .wrapping_add(row as u64 * 17)
}

/// Decompose every branch of `query` into module specs and analyzer tasks.
pub fn decompose_query(query: &Query, config: &CompilerConfig) -> Decomposition {
    let policy = SketchPolicy::for_query(query, config);
    let mut specs = Vec::new();
    let mut tasks = Vec::new();
    let mut front_filters = Vec::new();
    let mut global_order = 0usize;

    // A Min-merge over same-packet branches runs on the data plane; each
    // branch's merge ℝ must be emitted right after that branch's modules so
    // it reads the branch's own state result before any other branch
    // overwrites the container.
    let dp_merge = matches!(
        &query.merge,
        Some(Merge::Combine { op: MergeOp::Min, cmp, .. })
            if cmp.is_monotone() && query.mergeable_on_data_plane()
    );
    // For analyzer-side merges, branch 0 reports candidate keys at its own
    // threshold; emitted right after branch 0's modules for the same
    // container-liveness reason as the data-plane merge.
    let driver_threshold = match &query.merge {
        Some(Merge::Combine { cmp, value, .. }) if !dp_merge => Some((*cmp, *value)),
        Some(Merge::And { left, .. }) => Some(*left),
        _ => None,
    };

    for (b, branch) in query.branches.iter().enumerate() {
        let b = b as u8;
        front_filters.push(branch.front_filters());
        let n_prims = branch.primitives.len();
        for (p, prim) in branch.primitives.iter().enumerate() {
            let is_last = p + 1 == n_prims;
            match prim {
                Primitive::Filter(preds) => {
                    for pred in preds {
                        push_suite(
                            &mut specs,
                            b,
                            p,
                            keys_mask(&[pred.expr]),
                            [
                                (
                                    ModuleKind::HashCalculation,
                                    ModuleRole::HashDirect { field: pred.expr.field },
                                ),
                                (ModuleKind::StateBank, ModuleRole::StatePass),
                                (
                                    ModuleKind::ResultProcess,
                                    ModuleRole::FilterCheck { value: shifted_value(pred) },
                                ),
                            ],
                        );
                    }
                }
                Primitive::Map(keys) => {
                    // Only 𝕂 does real work; the rest of the suite is
                    // unused (removable by Opt.2).
                    specs.push(ModuleSpec {
                        branch: b,
                        prim_idx: p,
                        kind: ModuleKind::KeySelection,
                        role: ModuleRole::SelectKeys { mask: keys_mask(keys) },
                        set: SetId::Set1,
                        row: 0,
                        global_order: None,
                    });
                    for kind in [
                        ModuleKind::HashCalculation,
                        ModuleKind::StateBank,
                        ModuleKind::ResultProcess,
                    ] {
                        specs.push(ModuleSpec {
                            branch: b,
                            prim_idx: p,
                            kind,
                            role: ModuleRole::Unused,
                            set: SetId::Set1,
                            row: 0,
                            global_order: None,
                        });
                    }
                }
                Primitive::Distinct(keys) => {
                    let rows = policy.bf_rows;
                    for row in 0..rows {
                        let r_role = if rows > 1 {
                            let o = global_order;
                            global_order += 1;
                            (ModuleRole::RowMin, Some(o))
                        } else {
                            (ModuleRole::DistinctCheckState, None)
                        };
                        push_suite_ordered(
                            &mut specs,
                            b,
                            p,
                            row,
                            keys_mask(keys),
                            [
                                (
                                    ModuleKind::HashCalculation,
                                    ModuleRole::HashKeys {
                                        seed: row_seed(config, b, p, row),
                                        range: config.registers_per_array,
                                    },
                                    None,
                                ),
                                (ModuleKind::StateBank, ModuleRole::StateOr, None),
                                r_role.clone().into_kind(ModuleKind::ResultProcess),
                            ],
                        );
                    }
                    if rows > 1 {
                        let o = global_order;
                        global_order += 1;
                        specs.push(ModuleSpec {
                            branch: b,
                            prim_idx: p,
                            kind: ModuleKind::ResultProcess,
                            role: ModuleRole::DistinctCheckGlobal,
                            set: SetId::Set1,
                            row: 0,
                            global_order: Some(o),
                        });
                    }
                }
                Primitive::Reduce { keys, func } => {
                    // Maxima are exact under collisions-as-max, so a single
                    // row suffices; counts/sums use CM rows.
                    let rows =
                        if matches!(func, ReduceFunc::MaxField(_)) { 1 } else { policy.cm_rows };
                    let field = match func {
                        ReduceFunc::Count => None,
                        ReduceFunc::SumField(f) | ReduceFunc::MaxField(f) => Some(*f),
                    };
                    let is_max = matches!(func, ReduceFunc::MaxField(_));
                    for row in 0..rows {
                        let r_role = if rows > 1 {
                            let o = global_order;
                            global_order += 1;
                            (ModuleRole::RowMin, Some(o))
                        } else {
                            (ModuleRole::Unused, None)
                        };
                        push_suite_ordered(
                            &mut specs,
                            b,
                            p,
                            row,
                            keys_mask(keys),
                            [
                                (
                                    ModuleKind::HashCalculation,
                                    ModuleRole::HashKeys {
                                        seed: row_seed(config, b, p, row),
                                        range: config.registers_per_array,
                                    },
                                    None,
                                ),
                                (
                                    ModuleKind::StateBank,
                                    if is_max {
                                        ModuleRole::StateMax {
                                            field: field.expect("max needs a field"),
                                        }
                                    } else {
                                        ModuleRole::StateAdd { field }
                                    },
                                    None,
                                ),
                                r_role.clone().into_kind(ModuleKind::ResultProcess),
                            ],
                        );
                    }
                }
                Primitive::ResultFilter { op, value } => {
                    // The threshold reads where the preceding reduce left
                    // its result: the global accumulator for multi-row
                    // sketches, the state result for single-row ones
                    // (max-reduces are always single-row).
                    let on_global = branch.primitives[..p]
                        .iter()
                        .rev()
                        .find_map(|prim| match prim {
                            Primitive::Reduce { func, .. } => {
                                Some(!matches!(func, ReduceFunc::MaxField(_)) && policy.cm_rows > 1)
                            }
                            _ => None,
                        })
                        .unwrap_or(policy.cm_rows > 1);
                    match op {
                        CmpOp::Ge | CmpOp::Gt => {
                            let lo = if *op == CmpOp::Ge { *value } else { value + 1 } as u32;
                            // Crossing window: counts increment by 1, byte
                            // sums by up to MAX_WIRE_LEN.
                            let window = crossing_window(branch, p);
                            let o = on_global.then(|| {
                                let o = global_order;
                                global_order += 1;
                                o
                            });
                            specs.push(ModuleSpec {
                                branch: b,
                                prim_idx: p,
                                kind: ModuleKind::ResultProcess,
                                role: ModuleRole::Threshold {
                                    lo,
                                    hi: lo.saturating_add(window).saturating_sub(1),
                                    on_global,
                                    report: is_last && query.merge.is_none(),
                                    stop_below: !is_last,
                                },
                                set: SetId::Set1,
                                row: 0,
                                global_order: o,
                            });
                        }
                        other => {
                            // Non-monotone thresholds resolve at epoch end
                            // on the analyzer (§7 limitations).
                            tasks.push(AnalyzerTask::EpochThreshold {
                                branch: b,
                                cmp: *other,
                                value: *value,
                            });
                        }
                    }
                }
            }
        }

        if b == 0 {
            if let Some((cmp, value)) = driver_threshold {
                add_driver_threshold(&mut specs, query, cmp, value);
            }
        }

        // Fig. 6: fold this branch's result into the global accumulator
        // right here, while the branch's state result is still live in its
        // metadata set.
        if dp_merge {
            let role = if b == 0 { ModuleRole::MergeSet } else { ModuleRole::MergeAccum };
            let o = global_order;
            global_order += 1;
            specs.push(ModuleSpec {
                branch: b,
                prim_idx: n_prims,
                kind: ModuleKind::ResultProcess,
                role,
                set: SetId::Set1,
                row: 0,
                global_order: Some(o),
            });
        }
    }

    // Merge lowering (the part after all branches).
    match &query.merge {
        None => {}
        Some(Merge::Combine { cmp, value, .. }) if dp_merge => {
            // One threshold-report over the merged global value.
            let lo = if *cmp == CmpOp::Ge { *value } else { value + 1 } as u32;
            let last = (query.branches.len() - 1) as u8;
            let o = global_order;
            specs.push(ModuleSpec {
                branch: last,
                prim_idx: query.branches[last as usize].primitives.len() + 1,
                kind: ModuleKind::ResultProcess,
                role: ModuleRole::Threshold {
                    lo,
                    // Counts step through the min one at a time, but row
                    // pollution can nudge the reading a few steps between
                    // this key's packets — widen the window accordingly.
                    hi: lo.saturating_add(POLLUTION_SLACK),
                    on_global: true,
                    report: true,
                    stop_below: false,
                },
                set: SetId::Set1,
                row: 0,
                global_order: Some(o),
            });
        }
        Some(Merge::Combine { op, cmp, value }) => {
            // Cross-packet or non-min merge: the driver threshold was
            // emitted after branch 0; the analyzer probes the others.
            for b in 1..query.branches.len() as u8 {
                tasks.push(AnalyzerTask::ProbeMerge {
                    branch: b,
                    op: *op,
                    cmp: *cmp,
                    value: *value,
                });
            }
        }
        Some(Merge::And { left: _, right }) => {
            // The epoch-end probe reads sketch rows that only OVER-count:
            // colliding keys can lift a truly-zero reading above an exact
            // upper bound (Q9's "no TCP" = `Le 0`), silently dropping a
            // real detection. A polluted reading can never prove the true
            // count exceeds the bound, so upper-bound checks get the same
            // slack as crossing windows — erring toward reporting.
            let value = match right.0 {
                CmpOp::Le | CmpOp::Lt => right.1.saturating_add(POLLUTION_SLACK as u64),
                _ => right.1,
            };
            tasks.push(AnalyzerTask::ProbeCheck { branch: 1, cmp: right.0, value });
        }
    }

    Decomposition { specs, front_filters, tasks, policy }
}

/// Add branch 0's candidate-reporting threshold for analyzer-side merges.
/// If the driver's comparison is monotone it reports at crossing; otherwise
/// the branch reports first occurrences (state == 1) and the analyzer
/// re-checks everything at epoch end.
fn add_driver_threshold(specs: &mut Vec<ModuleSpec>, query: &Query, cmp: CmpOp, value: u64) {
    let driver = &query.branches[0];
    let (lo, hi) = if cmp.is_monotone() {
        let lo = if cmp == CmpOp::Ge { value } else { value + 1 } as u32;
        let window = crossing_window(driver, driver.primitives.len());
        (lo, lo.saturating_add(window - 1))
    } else {
        (1, 1)
    };
    specs.push(ModuleSpec {
        branch: 0,
        prim_idx: query.branches[0].primitives.len(),
        kind: ModuleKind::ResultProcess,
        role: ModuleRole::Threshold { lo, hi, on_global: false, report: true, stop_below: false },
        set: SetId::Set1,
        row: 0,
        global_order: None,
    });
}

/// Crossing-window width for a threshold after the `p`-th primitive of a
/// branch: one step for counters, [`MAX_WIRE_LEN`] for byte sums. Exact —
/// no [`POLLUTION_SLACK`]: per-branch thresholds fire on every crossing
/// key of every query, so widening here multiplies the network-wide
/// mirroring rate and breaks the Fig. 12 two-orders bound. The slack is
/// reserved for the two narrow places pollution was observed to lose
/// detections: the data-plane merge threshold and epoch-end probes.
fn crossing_window(branch: &newton_query::ast::Branch, p: usize) -> u32 {
    let sums_bytes = branch.primitives[..p].iter().rev().find_map(|prim| match prim {
        Primitive::Reduce { func: ReduceFunc::SumField(_) | ReduceFunc::MaxField(_), .. } => {
            Some(true)
        }
        Primitive::Reduce { func: ReduceFunc::Count, .. } => Some(false),
        _ => None,
    });
    if sums_bytes == Some(true) {
        MAX_WIRE_LEN
    } else {
        1
    }
}

/// Helper: convert a (role, order) pair into a (kind, role, order) triple.
trait IntoKind {
    fn into_kind(self, kind: ModuleKind) -> (ModuleKind, ModuleRole, Option<usize>);
}

impl IntoKind for (ModuleRole, Option<usize>) {
    fn into_kind(self, kind: ModuleKind) -> (ModuleKind, ModuleRole, Option<usize>) {
        (kind, self.0, self.1)
    }
}

/// Push 𝕂 + the given (ℍ, 𝕊, ℝ) role triple as one suite.
fn push_suite(
    specs: &mut Vec<ModuleSpec>,
    branch: u8,
    prim_idx: usize,
    mask: u128,
    rest: [(ModuleKind, ModuleRole); 3],
) {
    specs.push(ModuleSpec {
        branch,
        prim_idx,
        kind: ModuleKind::KeySelection,
        role: ModuleRole::SelectKeys { mask },
        set: SetId::Set1,
        row: 0,
        global_order: None,
    });
    for (kind, role) in rest {
        specs.push(ModuleSpec {
            branch,
            prim_idx,
            kind,
            role,
            set: SetId::Set1,
            row: 0,
            global_order: None,
        });
    }
}

/// Like [`push_suite`] but the last element carries a global order.
fn push_suite_ordered(
    specs: &mut Vec<ModuleSpec>,
    branch: u8,
    prim_idx: usize,
    row: usize,
    mask: u128,
    rest: [(ModuleKind, ModuleRole, Option<usize>); 3],
) {
    specs.push(ModuleSpec {
        branch,
        prim_idx,
        kind: ModuleKind::KeySelection,
        role: ModuleRole::SelectKeys { mask },
        set: SetId::Set1,
        row,
        global_order: None,
    });
    for (kind, role, order) in rest {
        specs.push(ModuleSpec {
            branch,
            prim_idx,
            kind,
            role,
            set: SetId::Set1,
            row,
            global_order: order,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newton_query::catalog;

    fn cfg() -> CompilerConfig {
        CompilerConfig::default()
    }

    #[test]
    fn q1_decomposition_shape() {
        let q = catalog::q1_new_tcp();
        let d = decompose_query(&q, &cfg());
        // Single branch: multi-row policy.
        assert_eq!(d.policy.cm_rows, 2);
        // filter ×2 (4 each) + map (4) + reduce (2 rows × 4) + threshold (1).
        assert_eq!(d.specs.len(), 4 + 4 + 4 + 8 + 1);
        assert_eq!(d.front_filters, vec![2]);
        assert!(d.tasks.is_empty());
    }

    #[test]
    fn multi_branch_queries_use_single_row_sketches() {
        let q = catalog::q6_syn_flood();
        let d = decompose_query(&q, &cfg());
        assert_eq!(d.policy, SketchPolicy { bf_rows: 1, cm_rows: 1 });
        // Merge modules present: MergeSet + 2×MergeAccum + final threshold.
        let merges = d
            .specs
            .iter()
            .filter(|s| matches!(s.role, ModuleRole::MergeSet | ModuleRole::MergeAccum))
            .count();
        assert_eq!(merges, 3);
        let reports = d
            .specs
            .iter()
            .filter(|s| matches!(s.role, ModuleRole::Threshold { report: true, .. }))
            .count();
        assert_eq!(reports, 1, "exactly one reporting threshold after the merge");
    }

    #[test]
    fn q8_and_merge_defers_to_analyzer() {
        let q = catalog::q8_slowloris();
        let d = decompose_query(&q, &cfg());
        assert!(matches!(d.tasks[..], [AnalyzerTask::ProbeCheck { branch: 1, .. }]));
        // Driver branch reports candidates on the data plane.
        assert!(
            d.specs
                .iter()
                .any(|s| s.branch == 0
                    && matches!(s.role, ModuleRole::Threshold { report: true, .. }))
        );
    }

    #[test]
    fn q7_min_merge_across_packets_is_probed() {
        let q = catalog::q7_completed_tcp();
        let d = decompose_query(&q, &cfg());
        assert!(d.tasks.iter().any(|t| matches!(t, AnalyzerTask::ProbeMerge { branch: 1, .. })));
    }

    #[test]
    fn global_orders_are_strictly_increasing() {
        for q in catalog::all_queries() {
            let d = decompose_query(&q, &cfg());
            let orders: Vec<usize> = d.specs.iter().filter_map(|s| s.global_order).collect();
            for w in orders.windows(2) {
                assert!(w[0] < w[1], "{}: global order not increasing", q.name);
            }
        }
    }

    #[test]
    fn filter_check_value_is_field_aligned() {
        let q = catalog::q1_new_tcp();
        let d = decompose_query(&q, &cfg());
        let checks: Vec<u32> = d
            .specs
            .iter()
            .filter_map(|s| match s.role {
                ModuleRole::FilterCheck { value } => Some(value),
                _ => None,
            })
            .collect();
        assert_eq!(checks, vec![6, 2], "proto == 6, flags == 2");
    }

    #[test]
    fn byte_sum_thresholds_get_wide_crossing_windows() {
        let q = catalog::q8_slowloris();
        let d = decompose_query(&q, &cfg());
        // Q8's driver threshold is on a connection COUNT: window 1-wide
        // would be wrong only for byte sums; driver is branch 0 (count).
        let th = d
            .specs
            .iter()
            .find_map(|s| match s.role {
                ModuleRole::Threshold { lo, hi, report: true, .. } => Some((lo, hi)),
                _ => None,
            })
            .unwrap();
        assert_eq!(th.0, catalog::thresholds::SLOWLORIS_CONNS as u32);
    }
}
