//! Step 2: module rule composition (Algorithm 1, §4.3).
//!
//! Given the decomposed module specs, this module applies the paper's three
//! optimizations and assigns each surviving module to a pipeline stage:
//!
//! * **Opt.1** — front `filter`s over 5-tuple/flags fields are absorbed by
//!   `newton_init`, removing their whole suites.
//! * **Opt.2** — unused modules (a `map`'s ℍ/𝕊/ℝ, a single-row `reduce`'s
//!   ℝ) are removed, and redundant 𝕂s are removed when a previous 𝕂 of the
//!   same branch and metadata set already selected the same operation keys.
//! * **Opt.3** — vertical composition: consecutive primitives alternate
//!   metadata sets, and a greedy packer shares stages between dependency-
//!   free modules (one module of each kind per stage — the compact layout).
//!
//! Stage packing honours three hard constraints:
//! 1. modules of the same branch and set execute in order across stages
//!    (write-read dependencies, Fig. 4);
//! 2. a state-*writing* 𝕊 executes strictly after every earlier ℝ gate of
//!    its branch (a packet rejected by a filter must not have counted);
//! 3. ℝ modules touching the global result keep their relative order.

use crate::decompose::{Decomposition, ModuleRole, ModuleSpec};
use newton_dataplane::{ModuleKind, SetId};
use newton_query::Query;

/// Which optimizations to apply (Fig. 15 sweeps these cumulatively).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptLevel {
    pub front_filter: bool,
    pub remove_unneeded: bool,
    pub vertical: bool,
}

impl OptLevel {
    /// The naïve baseline: no optimization, one module per stage.
    pub fn none() -> Self {
        OptLevel { front_filter: false, remove_unneeded: false, vertical: false }
    }

    /// Baseline + Opt.1.
    pub fn opt1() -> Self {
        OptLevel { front_filter: true, remove_unneeded: false, vertical: false }
    }

    /// Baseline + Opt.1 + Opt.2.
    pub fn opt2() -> Self {
        OptLevel { front_filter: true, remove_unneeded: true, vertical: false }
    }

    /// All optimizations (Opt.1–3).
    pub fn full() -> Self {
        OptLevel { front_filter: true, remove_unneeded: true, vertical: true }
    }

    /// The four cumulative levels in Fig. 15 order.
    pub fn ladder() -> [(&'static str, OptLevel); 4] {
        [
            ("baseline", OptLevel::none()),
            ("+opt1", OptLevel::opt1()),
            ("+opt2", OptLevel::opt2()),
            ("+opt3", OptLevel::full()),
        ]
    }
}

/// The composed query: surviving modules with set and stage assignments.
#[derive(Debug, Clone)]
pub struct Composition {
    /// Surviving module specs (sets assigned).
    pub kept: Vec<ModuleSpec>,
    /// Stage index per kept module.
    pub stage_of: Vec<usize>,
    /// Number of front filters absorbed into `newton_init`, per branch.
    pub absorbed_front_filters: Vec<usize>,
    /// The optimization level used.
    pub opt: OptLevel,
}

impl Composition {
    /// Module count (Fig. 15b's y-axis).
    pub fn modules(&self) -> usize {
        self.kept.len()
    }

    /// Stage count (Fig. 15b's y-axis).
    pub fn stages(&self) -> usize {
        self.stage_of.iter().copied().max().map_or(0, |s| s + 1)
    }

    /// Kept modules of one stage.
    pub fn stage_modules(&self, stage: usize) -> impl Iterator<Item = &ModuleSpec> {
        self.kept.iter().zip(&self.stage_of).filter(move |(_, &s)| s == stage).map(|(m, _)| m)
    }
}

/// Run Algorithm 1 over a decomposition at the given optimization level.
pub fn compose(query: &Query, decomp: &Decomposition, opt: OptLevel) -> Composition {
    let mut kept: Vec<ModuleSpec> = Vec::with_capacity(decomp.specs.len());
    let absorbed: Vec<usize> =
        if opt.front_filter { decomp.front_filters.clone() } else { vec![0; query.branches.len()] };

    // Opt.1: drop the suites of absorbed front filters.
    for spec in &decomp.specs {
        let fr = absorbed.get(spec.branch as usize).copied().unwrap_or(0);
        if opt.front_filter && spec.prim_idx < fr {
            continue;
        }
        kept.push(spec.clone());
    }

    // Opt.3 part 1: vertical set assignment. Consecutive primitives
    // alternate metadata sets so their modules can share stages — but a
    // primitive reusing the previous primitive's operation keys stays in
    // the same set, so Opt.2's redundant-𝕂 removal still applies (this is
    // Algorithm 1's θ₁/θ₂ bookkeeping: alternating sets blindly would
    // force restoring removed 𝕂s).
    if opt.vertical {
        let mut assignment: std::collections::HashMap<(u8, usize), SetId> =
            std::collections::HashMap::new();
        for b in 0..query.branches.len() as u8 {
            let mut prev_mask: Option<u128> = None;
            let mut current = if b % 2 == 0 { SetId::Set1 } else { SetId::Set2 };
            let mut prims: Vec<usize> =
                kept.iter().filter(|m| m.branch == b).map(|m| m.prim_idx).collect();
            prims.sort_unstable();
            prims.dedup();
            for p in prims {
                let mask = kept.iter().find_map(|m| match m.role {
                    ModuleRole::SelectKeys { mask } if m.branch == b && m.prim_idx == p => {
                        Some(mask)
                    }
                    _ => None,
                });
                match (mask, prev_mask) {
                    (Some(m), Some(pm)) if m != pm => current = current.other(),
                    _ => {}
                }
                if mask.is_some() {
                    prev_mask = mask;
                }
                assignment.insert((b, p), current);
            }
        }
        for spec in &mut kept {
            if let Some(&set) = assignment.get(&(spec.branch, spec.prim_idx)) {
                spec.set = set;
            }
        }
        // ℝ-only modules must report the operation keys of their branch's
        // last key-bearing suite: inherit the set of the nearest preceding
        // stateful module of the same branch.
        for i in 0..kept.len() {
            if kept[i].kind == ModuleKind::ResultProcess && is_r_only(&kept[i].role) {
                let set = kept[..i]
                    .iter()
                    .rev()
                    .find(|m| m.branch == kept[i].branch && m.kind == ModuleKind::StateBank)
                    .map(|m| m.set);
                if let Some(set) = set {
                    kept[i].set = set;
                }
            }
        }
    }

    // Opt.2: remove unused modules and redundant 𝕂s.
    if opt.remove_unneeded {
        kept.retain(|m| m.role != ModuleRole::Unused);
        let mut theta: std::collections::HashMap<(u8, SetId), u128> =
            std::collections::HashMap::new();
        kept.retain(|m| match m.role {
            ModuleRole::SelectKeys { mask } => {
                let key = (m.branch, m.set);
                if theta.get(&key) == Some(&mask) {
                    false // same operation keys already selected (Opt.2)
                } else {
                    theta.insert(key, mask);
                    true
                }
            }
            _ => true,
        });
    }

    // Stage assignment.
    let stage_of = if opt.vertical { pack_stages(&kept) } else { (0..kept.len()).collect() };

    Composition { kept, stage_of, absorbed_front_filters: absorbed, opt }
}

/// Compose for an *executable* naive layout: one module per stage, where
/// stage `i` of the pipeline hosts module kind `ALL[i % 4]` (𝕂,ℍ,𝕊,ℝ
/// cycling). Each module takes the next stage of its kind, so modules sit
/// strictly in sequence — trivially hazard-free, and maximally wasteful:
/// up to three stages skip between consecutive modules, which is exactly
/// the utilization gap the compact layout closes (§4.2).
pub fn compose_naive_executable(query: &Query, decomp: &Decomposition) -> Composition {
    // Opt.1/Opt.2 still apply (they are rule-level); only the layout and
    // packing differ.
    let base = compose(query, decomp, OptLevel::opt2());
    let mut stage_of = Vec::with_capacity(base.kept.len());
    let mut next = 0usize;
    for m in &base.kept {
        // Advance to the next stage hosting this module's kind.
        while ModuleKind::ALL[next % 4] != m.kind {
            next += 1;
        }
        stage_of.push(next);
        next += 1;
    }
    Composition {
        kept: base.kept,
        stage_of,
        absorbed_front_filters: base.absorbed_front_filters,
        opt: OptLevel::opt2(),
    }
}

/// Retarget a compact-layout rule set (slot = kind depth) to the naive
/// layout's single slot per stage.
pub fn retarget_to_naive(rules: &newton_dataplane::RuleSet) -> newton_dataplane::RuleSet {
    use newton_dataplane::ModuleAddr;
    fn zero_slot<T: Clone>(v: &[(ModuleAddr, T)]) -> Vec<(ModuleAddr, T)> {
        v.iter().map(|(a, r)| (ModuleAddr { stage: a.stage, slot: 0 }, r.clone())).collect()
    }
    newton_dataplane::RuleSet {
        init: rules.init.clone(),
        k: zero_slot(&rules.k),
        h: zero_slot(&rules.h),
        s: zero_slot(&rules.s),
        r: zero_slot(&rules.r),
    }
}

/// ℝ roles that are not part of a 𝕂ℍ𝕊ℝ suite of their own.
fn is_r_only(role: &ModuleRole) -> bool {
    matches!(
        role,
        ModuleRole::Threshold { .. }
            | ModuleRole::DistinctCheckGlobal
            | ModuleRole::MergeSet
            | ModuleRole::MergeAccum
    )
}

/// Whether an ℝ role gates the branch (can stop it): state writes of the
/// same branch must come strictly later.
fn is_gate(role: &ModuleRole) -> bool {
    matches!(
        role,
        ModuleRole::FilterCheck { .. }
            | ModuleRole::DistinctCheckGlobal
            | ModuleRole::DistinctCheckState
            | ModuleRole::Threshold { stop_below: true, .. }
    )
}

/// Whether a role writes persistent state.
fn writes_state(role: &ModuleRole) -> bool {
    matches!(role, ModuleRole::StateAdd { .. } | ModuleRole::StateMax { .. } | ModuleRole::StateOr)
}

/// PHV containers modules contend over. Within one packet walk, a stage
/// reads containers at stage entry and writes them at stage exit, so
/// hazards are exactly the classic pipeline ones:
///
/// * **RAW** — a reader must be in a strictly later stage than the value's
///   producer;
/// * **WAR** — the next writer of a container must not land in an earlier
///   stage than the previous value's readers (same stage is fine: reads
///   happen at entry, writes at exit);
/// * **WAW** — writers of one container are strictly stage-ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Container {
    OpKeys(SetId),
    Hash(SetId),
    State(SetId),
    Global,
}

/// The container a module writes, if any.
fn writes_container(m: &ModuleSpec) -> Option<Container> {
    match m.kind {
        ModuleKind::KeySelection => Some(Container::OpKeys(m.set)),
        ModuleKind::HashCalculation => Some(Container::Hash(m.set)),
        ModuleKind::StateBank => Some(Container::State(m.set)),
        ModuleKind::ResultProcess => match m.role {
            ModuleRole::RowMin
            | ModuleRole::MergeSet
            | ModuleRole::MergeAccum
            | ModuleRole::DistinctCheckGlobal => Some(Container::Global),
            _ => None,
        },
    }
}

/// The containers a module reads.
fn reads_containers(m: &ModuleSpec) -> Vec<Container> {
    match m.kind {
        ModuleKind::KeySelection => Vec::new(), // packet fields only
        ModuleKind::HashCalculation => vec![Container::OpKeys(m.set)],
        ModuleKind::StateBank => vec![Container::Hash(m.set)],
        ModuleKind::ResultProcess => match &m.role {
            ModuleRole::FilterCheck { .. } | ModuleRole::DistinctCheckState => {
                vec![Container::State(m.set)]
            }
            ModuleRole::RowMin | ModuleRole::MergeAccum => {
                vec![Container::State(m.set), Container::Global]
            }
            ModuleRole::MergeSet => vec![Container::State(m.set)],
            ModuleRole::DistinctCheckGlobal => vec![Container::Global],
            // A reporting threshold also mirrors the operation keys, so it
            // reads the OpKeys container too.
            ModuleRole::Threshold { on_global, report, .. } => {
                let mut reads =
                    vec![if *on_global { Container::Global } else { Container::State(m.set) }];
                if *report {
                    reads.push(Container::OpKeys(m.set));
                }
                reads
            }
            _ => Vec::new(),
        },
    }
}

/// Greedy stage packing under the pipeline hazards above, plus two
/// semantic constraints: a state-writing 𝕊 executes strictly after every
/// earlier ℝ gate of its branch (a filtered-out packet must never have
/// counted), and global-result ℝs keep their relative logical order.
pub(crate) fn pack_stages(kept: &[ModuleSpec]) -> Vec<usize> {
    let n = kept.len();
    // strict[i]: j must be assigned with stage < current to place i.
    // weak[i]: j must be assigned with stage <= current to place i.
    let mut strict: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut weak: Vec<Vec<usize>> = vec![Vec::new(); n];

    for i in 0..n {
        let m = &kept[i];
        // RAW: nearest preceding writer of each container read.
        for c in reads_containers(m) {
            if let Some(j) = (0..i).rev().find(|&j| writes_container(&kept[j]) == Some(c)) {
                strict[i].push(j);
            }
        }
        if let Some(c) = writes_container(m) {
            if let Some(w1) = (0..i).rev().find(|&j| writes_container(&kept[j]) == Some(c)) {
                // WAW: strictly after the previous writer.
                strict[i].push(w1);
                // WAR: not before the previous value's readers.
                for (r, other) in kept.iter().enumerate().take(i).skip(w1 + 1) {
                    if reads_containers(other).contains(&c) {
                        weak[i].push(r);
                    }
                }
            }
        }
        // Gating: state writes strictly after earlier gates of the branch.
        if writes_state(&m.role) {
            strict[i]
                .extend((0..i).filter(|&j| kept[j].branch == m.branch && is_gate(&kept[j].role)));
        }
        // Global serialization order.
        if let Some(o) = m.global_order {
            strict[i].extend(
                (0..n).filter(|&j| j != i && kept[j].global_order.is_some_and(|oj| oj < o)),
            );
        }
    }

    let mut stage_of: Vec<Option<usize>> = vec![None; n];
    let mut assigned = 0;
    let mut stage = 0;
    while assigned < n {
        let mut used: Vec<ModuleKind> = Vec::with_capacity(4);
        for i in 0..n {
            if stage_of[i].is_some() || used.contains(&kept[i].kind) {
                continue;
            }
            let strict_ok = strict[i].iter().all(|&j| stage_of[j].is_some_and(|s| s < stage));
            let weak_ok = weak[i].iter().all(|&j| stage_of[j].is_some_and(|s| s <= stage));
            if !strict_ok || !weak_ok {
                continue;
            }
            stage_of[i] = Some(stage);
            used.push(kept[i].kind);
            assigned += 1;
        }
        stage += 1;
        assert!(stage <= 4 * n + 4, "stage packing failed to converge ({assigned}/{n} assigned)");
    }
    stage_of.into_iter().map(|s| s.expect("all assigned")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose_query;
    use crate::CompilerConfig;
    use newton_query::catalog;

    fn comp(q: &Query, opt: OptLevel) -> Composition {
        let d = decompose_query(q, &CompilerConfig::default());
        compose(q, &d, opt)
    }

    #[test]
    fn baseline_uses_one_stage_per_module() {
        let q = catalog::q1_new_tcp();
        let c = comp(&q, OptLevel::none());
        assert_eq!(c.stages(), c.modules());
        assert!(c.modules() >= 20, "baseline Q1 should be large, got {}", c.modules());
    }

    #[test]
    fn opt1_removes_front_filter_suites() {
        let q = catalog::q1_new_tcp();
        let base = comp(&q, OptLevel::none());
        let o1 = comp(&q, OptLevel::opt1());
        assert_eq!(base.modules() - o1.modules(), 8, "two front filters × 4 modules");
        assert_eq!(o1.absorbed_front_filters, vec![2]);
    }

    #[test]
    fn opt2_removes_unused_and_redundant() {
        let q = catalog::q1_new_tcp();
        let o1 = comp(&q, OptLevel::opt1());
        let o2 = comp(&q, OptLevel::opt2());
        assert!(o2.modules() < o1.modules());
        // Q1 after opt2: map K(1) + reduce rows (2×(H,S,R)) + threshold(1)
        // = 8 (reduce 𝕂s redundant after map's 𝕂).
        assert_eq!(o2.modules(), 8);
    }

    #[test]
    fn opt3_packs_stages_below_module_count() {
        for q in catalog::all_queries() {
            let c = comp(&q, OptLevel::full());
            assert!(
                c.stages() < c.modules() || c.modules() <= 2,
                "{}: packing gained nothing ({} stages for {} modules)",
                q.name,
                c.stages(),
                c.modules()
            );
        }
    }

    #[test]
    fn q4_matches_paper_scale() {
        // §6.5: Q4 occupies 10 stages and 19 modules after optimization.
        let q = catalog::q4_port_scan();
        let c = comp(&q, OptLevel::full());
        assert_eq!(c.modules(), 19, "Q4 optimized module count");
        assert!((8..=11).contains(&c.stages()), "Q4 optimized stages {} should be ~10", c.stages());
    }

    #[test]
    fn no_pipeline_hazards() {
        // RAW / WAR / WAW discipline over all PHV containers, for every
        // catalog query at full optimization.
        for q in catalog::all_queries() {
            let c = comp(&q, OptLevel::full());
            let n = c.kept.len();
            for i in 0..n {
                // RAW: every read sees its producer strictly earlier.
                for cont in reads_containers(&c.kept[i]) {
                    if let Some(w) =
                        (0..i).rev().find(|&j| writes_container(&c.kept[j]) == Some(cont))
                    {
                        assert!(
                            c.stage_of[w] < c.stage_of[i],
                            "{}: RAW hazard on {:?} between #{w} and #{i}",
                            q.name,
                            cont
                        );
                    }
                }
                // WAW + WAR.
                if let Some(cont) = writes_container(&c.kept[i]) {
                    if let Some(w1) =
                        (0..i).rev().find(|&j| writes_container(&c.kept[j]) == Some(cont))
                    {
                        assert!(
                            c.stage_of[w1] < c.stage_of[i],
                            "{}: WAW hazard on {cont:?}",
                            q.name
                        );
                        for r in w1 + 1..i {
                            if reads_containers(&c.kept[r]).contains(&cont) {
                                assert!(
                                    c.stage_of[r] <= c.stage_of[i],
                                    "{}: WAR hazard on {cont:?} (reader #{r} after writer #{i})",
                                    q.name
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn state_writes_follow_gates() {
        for q in catalog::all_queries() {
            let c = comp(&q, OptLevel::full());
            for (i, m) in c.kept.iter().enumerate() {
                if !writes_state(&m.role) {
                    continue;
                }
                for (j, g) in c.kept.iter().enumerate().take(i) {
                    if g.branch == m.branch && is_gate(&g.role) {
                        assert!(
                            c.stage_of[j] < c.stage_of[i],
                            "{}: state write at stage {} not after gate at {}",
                            q.name,
                            c.stage_of[i],
                            c.stage_of[j]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn one_module_kind_per_stage() {
        for q in catalog::all_queries() {
            let c = comp(&q, OptLevel::full());
            for s in 0..c.stages() {
                let mut kinds: Vec<ModuleKind> = c.stage_modules(s).map(|m| m.kind).collect();
                let before = kinds.len();
                kinds.dedup();
                kinds.sort_by_key(|k| k.depth());
                kinds.dedup();
                assert_eq!(kinds.len(), before, "{}: duplicate kind in stage {s}", q.name);
            }
        }
    }

    #[test]
    fn global_order_is_respected_across_stages() {
        for q in catalog::all_queries() {
            let c = comp(&q, OptLevel::full());
            let mut ordered: Vec<(usize, usize)> = c
                .kept
                .iter()
                .zip(&c.stage_of)
                .filter_map(|(m, &s)| m.global_order.map(|o| (o, s)))
                .collect();
            ordered.sort_unstable();
            for w in ordered.windows(2) {
                assert!(w[0].1 < w[1].1, "{}: global ops share or invert stages", q.name);
            }
        }
    }
}
