//! Emit installable table rules from a composed query.
//!
//! Addresses follow the compact layout convention: within a stage, slot =
//! module-kind depth (𝕂=0, ℍ=1, 𝕊=2, ℝ=3) — matching
//! [`newton_dataplane::Layout`]'s compact stage ordering.

use crate::compose::Composition;
use crate::decompose::{Decomposition, ModuleRole};
use crate::plan::{BranchPlan, ProbeSpec, QueryPlan};
use crate::CompilerConfig;
use newton_dataplane::rules::Operand;
use newton_dataplane::{
    HRule, HashMode, InitRule, KRule, ModuleAddr, ModuleKind, QueryId, RAction, RMatch, RRule,
    RuleSet, SRule, SaluOp,
};
use newton_packet::Field;
use newton_query::ast::{Predicate, Primitive};
use newton_query::Query;

/// Emit the rule set and analyzer plan for a composed query.
pub fn generate_rules(
    query: &Query,
    id: QueryId,
    decomp: &Decomposition,
    composition: &Composition,
    config: &CompilerConfig,
) -> (RuleSet, QueryPlan) {
    let mut rules = RuleSet::default();

    // newton_init entries: one per branch, carrying the absorbed front
    // filters as ternary matches (Opt.1). A branch with no front filter
    // gets a catch-all entry.
    for (b, branch) in query.branches.iter().enumerate() {
        let absorbed = composition.absorbed_front_filters.get(b).copied().unwrap_or(0);
        let mut matches = Vec::new();
        for prim in branch.primitives.iter().take(absorbed) {
            if let Primitive::Filter(preds) = prim {
                for p in preds {
                    matches.push(init_match(p));
                }
            }
        }
        rules.init.push(InitRule { query: id, branch_mask: 1 << b, matches });
    }

    // Module rules from the composed specs.
    for (spec, &stage) in composition.kept.iter().zip(&composition.stage_of) {
        let addr = |kind: ModuleKind| ModuleAddr { stage, slot: kind.depth() };
        match &spec.role {
            ModuleRole::SelectKeys { mask } => rules.k.push((
                addr(ModuleKind::KeySelection),
                KRule { query: id, branch: spec.branch, set: spec.set, mask: *mask },
            )),
            ModuleRole::HashKeys { seed, range } => rules.h.push((
                addr(ModuleKind::HashCalculation),
                HRule {
                    query: id,
                    branch: spec.branch,
                    set: spec.set,
                    mode: HashMode::Hash { seed: *seed, range: *range },
                    offset: config.register_offset,
                },
            )),
            ModuleRole::HashDirect { field } => rules.h.push((
                addr(ModuleKind::HashCalculation),
                HRule {
                    query: id,
                    branch: spec.branch,
                    set: spec.set,
                    mode: HashMode::Direct(*field),
                    offset: 0,
                },
            )),
            ModuleRole::StatePass => rules.s.push((
                addr(ModuleKind::StateBank),
                SRule { query: id, branch: spec.branch, set: spec.set, op: SaluOp::PassHash },
            )),
            ModuleRole::StateAdd { field } => rules.s.push((
                addr(ModuleKind::StateBank),
                SRule {
                    query: id,
                    branch: spec.branch,
                    set: spec.set,
                    op: SaluOp::Add(match field {
                        Some(f) => Operand::Field(*f),
                        None => Operand::Const(1),
                    }),
                },
            )),
            ModuleRole::StateMax { field } => rules.s.push((
                addr(ModuleKind::StateBank),
                SRule {
                    query: id,
                    branch: spec.branch,
                    set: spec.set,
                    op: SaluOp::Max(Operand::Field(*field)),
                },
            )),
            ModuleRole::StateOr => rules.s.push((
                addr(ModuleKind::StateBank),
                SRule {
                    query: id,
                    branch: spec.branch,
                    set: spec.set,
                    op: SaluOp::Or(Operand::Const(1)),
                },
            )),
            ModuleRole::FilterCheck { value } => {
                push_gate(
                    &mut rules,
                    addr(ModuleKind::ResultProcess),
                    id,
                    spec.branch,
                    spec.set,
                    RMatch::exactly(*value),
                    Vec::new(),
                );
            }
            ModuleRole::DistinctCheckState => {
                push_gate(
                    &mut rules,
                    addr(ModuleKind::ResultProcess),
                    id,
                    spec.branch,
                    spec.set,
                    RMatch::exactly(0),
                    Vec::new(),
                );
            }
            ModuleRole::DistinctCheckGlobal => {
                let a = addr(ModuleKind::ResultProcess);
                rules.r.push((
                    a,
                    RRule {
                        query: id,
                        branch: spec.branch,
                        set: spec.set,
                        priority: 1,
                        state_match: RMatch::ANY,
                        global_match: RMatch::exactly(0),
                        actions: vec![RAction::GlobalReset],
                    },
                ));
                rules.r.push((
                    a,
                    RRule {
                        query: id,
                        branch: spec.branch,
                        set: spec.set,
                        priority: 0,
                        state_match: RMatch::ANY,
                        global_match: RMatch::ANY,
                        actions: vec![RAction::StopBranch],
                    },
                ));
            }
            ModuleRole::RowMin => rules.r.push((
                addr(ModuleKind::ResultProcess),
                RRule {
                    query: id,
                    branch: spec.branch,
                    set: spec.set,
                    priority: 0,
                    state_match: RMatch::ANY,
                    global_match: RMatch::ANY,
                    actions: vec![RAction::GlobalMin],
                },
            )),
            ModuleRole::MergeSet => rules.r.push((
                addr(ModuleKind::ResultProcess),
                RRule {
                    query: id,
                    branch: spec.branch,
                    set: spec.set,
                    priority: 0,
                    state_match: RMatch::ANY,
                    global_match: RMatch::ANY,
                    actions: vec![RAction::GlobalSet],
                },
            )),
            ModuleRole::MergeAccum => rules.r.push((
                addr(ModuleKind::ResultProcess),
                RRule {
                    query: id,
                    branch: spec.branch,
                    set: spec.set,
                    priority: 0,
                    state_match: RMatch::ANY,
                    global_match: RMatch::ANY,
                    actions: vec![RAction::GlobalMin],
                },
            )),
            ModuleRole::Threshold { lo, hi, on_global, report, stop_below } => {
                let a = addr(ModuleKind::ResultProcess);
                let (state_match, global_match) = if *on_global {
                    (RMatch::ANY, RMatch { lo: *lo, hi: *hi })
                } else {
                    (RMatch { lo: *lo, hi: *hi }, RMatch::ANY)
                };
                let mut actions = Vec::new();
                if *report {
                    actions.push(RAction::Report);
                }
                rules.r.push((
                    a,
                    RRule {
                        query: id,
                        branch: spec.branch,
                        set: spec.set,
                        priority: 1,
                        state_match,
                        global_match,
                        actions,
                    },
                ));
                if *stop_below {
                    let below = if *on_global {
                        (RMatch::ANY, RMatch::at_most(lo.saturating_sub(1)))
                    } else {
                        (RMatch::at_most(lo.saturating_sub(1)), RMatch::ANY)
                    };
                    rules.r.push((
                        a,
                        RRule {
                            query: id,
                            branch: spec.branch,
                            set: spec.set,
                            priority: 0,
                            state_match: below.0,
                            global_match: below.1,
                            actions: vec![RAction::StopBranch],
                        },
                    ));
                }
            }
            ModuleRole::Unused => {}
        }
    }

    let plan = build_plan(query, decomp, composition, config);
    (rules, plan)
}

/// "Match `m`, continue; anything else, stop the branch."
fn push_gate(
    rules: &mut RuleSet,
    addr: ModuleAddr,
    id: QueryId,
    branch: u8,
    set: newton_dataplane::SetId,
    state_match: RMatch,
    actions: Vec<RAction>,
) {
    rules.r.push((
        addr,
        RRule {
            query: id,
            branch,
            set,
            priority: 1,
            state_match,
            global_match: RMatch::ANY,
            actions,
        },
    ));
    rules.r.push((
        addr,
        RRule {
            query: id,
            branch,
            set,
            priority: 0,
            state_match: RMatch::ANY,
            global_match: RMatch::ANY,
            actions: vec![RAction::StopBranch],
        },
    ));
}

/// Lower a predicate to a `newton_init` ternary match.
fn init_match(p: &Predicate) -> (Field, u64, u64) {
    let w = p.expr.field.width();
    let prefix = p.expr.prefix;
    let mask = if prefix == 0 { 0 } else { (((1u128 << prefix) - 1) << (w - prefix)) as u64 };
    (p.expr.field, p.value << (w - prefix), mask)
}

/// Build the analyzer plan: report fields, state probes, driver branch.
fn build_plan(
    query: &Query,
    decomp: &Decomposition,
    composition: &Composition,
    config: &CompilerConfig,
) -> QueryPlan {
    let mut branches = Vec::new();
    for (b, branch) in query.branches.iter().enumerate() {
        let report_field = branch.report_keys().first().map(|e| e.field).unwrap_or(Field::DstIp);

        // The branch's last reduce: key field/mask + one probe per row.
        let last_reduce =
            branch.primitives.iter().enumerate().rev().find_map(|(p, prim)| match prim {
                Primitive::Reduce { keys, .. } => Some((p, keys.clone())),
                _ => None,
            });
        let mut probes = Vec::new();
        if let Some((prim_idx, keys)) = last_reduce {
            let key_field = keys.first().map(|e| e.field).unwrap_or(report_field);
            let key_mask = newton_query::ast::keys_mask(&keys);
            // Walk composed specs pairing each row's ℍ with its 𝕊.
            let mut pending_hash: Option<(u64, u32)> = None;
            for (spec, &stage) in composition.kept.iter().zip(&composition.stage_of) {
                if spec.branch != b as u8 || spec.prim_idx != prim_idx {
                    continue;
                }
                match &spec.role {
                    ModuleRole::HashKeys { seed, range } => pending_hash = Some((*seed, *range)),
                    ModuleRole::StateAdd { .. } | ModuleRole::StateMax { .. } => {
                        if let Some((seed, range)) = pending_hash.take() {
                            probes.push(ProbeSpec {
                                slice: 0,
                                s_addr: ModuleAddr { stage, slot: ModuleKind::StateBank.depth() },
                                seed,
                                range,
                                offset: config.register_offset,
                                key_field,
                                key_mask,
                            });
                        }
                    }
                    _ => {}
                }
            }
        }
        branches.push(BranchPlan { report_field, probes });
    }

    let driver = composition
        .kept
        .iter()
        .find_map(|s| match s.role {
            ModuleRole::Threshold { report: true, .. } => Some(s.branch),
            _ => None,
        })
        .unwrap_or(0);

    let dp_merged = query.merge.is_none()
        || composition.kept.iter().any(|s| matches!(s.role, ModuleRole::MergeSet));

    QueryPlan { branches, driver, tasks: decomp.tasks.clone(), dp_merged, epoch_ms: query.epoch_ms }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::{compose, OptLevel};
    use crate::decompose::decompose_query;
    use newton_query::catalog;

    fn gen(q: &Query) -> (RuleSet, QueryPlan) {
        let cfg = CompilerConfig::default();
        let d = decompose_query(q, &cfg);
        let c = compose(q, &d, OptLevel::full());
        generate_rules(q, 1, &d, &c, &cfg)
    }

    #[test]
    fn q1_rules_land_on_correct_slots() {
        let (rules, _) = gen(&catalog::q1_new_tcp());
        for (a, _) in &rules.k {
            assert_eq!(a.slot, 0);
        }
        for (a, _) in &rules.h {
            assert_eq!(a.slot, 1);
        }
        for (a, _) in &rules.s {
            assert_eq!(a.slot, 2);
        }
        for (a, _) in &rules.r {
            assert_eq!(a.slot, 3);
        }
    }

    #[test]
    fn init_entries_carry_absorbed_filters() {
        let (rules, _) = gen(&catalog::q1_new_tcp());
        assert_eq!(rules.init.len(), 1);
        let m = &rules.init[0].matches;
        assert_eq!(m.len(), 2, "proto + flags absorbed");
        assert!(m.contains(&(Field::Proto, 6, 0xFF)));
        assert!(m.contains(&(Field::TcpFlags, 2, 0xFF)));
    }

    #[test]
    fn q3_gets_catch_all_init() {
        let (rules, _) = gen(&catalog::q3_super_spreader());
        assert_eq!(rules.init.len(), 1);
        assert!(rules.init[0].matches.is_empty(), "no front filter → match-all dispatch");
    }

    #[test]
    fn probes_cover_cm_rows() {
        let (_, plan) = gen(&catalog::q1_new_tcp());
        // Single-branch: 2-row CM → 2 probes.
        assert_eq!(plan.branches.len(), 1);
        assert_eq!(plan.branches[0].probes.len(), 2);
        assert_eq!(plan.branches[0].report_field, Field::DstIp);
        assert!(plan.dp_merged);
    }

    #[test]
    fn q9_plan_probes_the_tcp_branch() {
        let (_, plan) = gen(&catalog::q9_dns_no_tcp());
        assert!(!plan.dp_merged);
        assert_eq!(plan.driver, 0);
        assert_eq!(
            plan.branches[1].probes.len(),
            2,
            "Q9's packet-disjoint branches use multi-row sketches"
        );
        assert_eq!(plan.branches[1].report_field, Field::SrcIp);
        assert!(matches!(
            plan.tasks[..],
            [crate::plan::AnalyzerTask::ProbeCheck { branch: 1, .. }]
        ));
    }

    #[test]
    fn q6_merges_on_data_plane() {
        let (rules, plan) = gen(&catalog::q6_syn_flood());
        assert!(plan.dp_merged);
        // Exactly one reporting R rule (the post-merge threshold).
        let reporters =
            rules.r.iter().filter(|(_, r)| r.actions.contains(&RAction::Report)).count();
        assert_eq!(reporters, 1);
        // Three init entries (one per branch).
        assert_eq!(rules.init.len(), 3);
    }

    #[test]
    fn every_branch_reaching_state_has_an_init_entry() {
        for q in catalog::all_queries() {
            let (rules, _) = gen(&q);
            assert_eq!(rules.init.len(), q.branches.len(), "{}", q.name);
        }
    }
}
