//! CQE-aware compilation: slice a query into per-switch rule sets whose
//! boundary state fits the 12-byte result snapshot.
//!
//! The snapshot carries ONE metadata set (hash + state results) plus the
//! global result; operation keys re-derive from packet headers only if the
//! receiving slice re-executes 𝕂. Two consequences drive this module:
//!
//! 1. Sliced queries are composed **horizontally** (Opt.1 + Opt.2, no
//!    vertical set interleaving): with a single live metadata set, any
//!    stage boundary's state fits the snapshot. This mirrors the paper's
//!    Algorithm 2 assumption that "stages of queries are sequential".
//! 2. A slice whose first key-consuming module has no preceding 𝕂 in the
//!    same slice gets the most recent 𝕂 **restored** at its head (the same
//!    "Restore 𝕂" move Algorithm 1 uses when operation keys change).

use crate::compose::{compose, OptLevel};
use crate::decompose::{decompose_query, ModuleRole, ModuleSpec};
use crate::plan::{ProbeSpec, QueryPlan};
use crate::rulegen::generate_rules;
use crate::CompilerConfig;
use newton_dataplane::{ModuleKind, QueryId, RuleSet, SetId};
use newton_query::Query;

/// A query compiled into CQE slices.
#[derive(Debug, Clone)]
pub struct SlicedCompilation {
    pub query_name: String,
    pub id: QueryId,
    /// One installable rule set per slice; stage numbering restarts at 0
    /// within each slice. Slice 0 carries the `newton_init` entries.
    pub slices: Vec<RuleSet>,
    /// Stage count of each slice (≤ the requested budget).
    pub slice_stage_counts: Vec<usize>,
    /// The metadata set live at the end of each slice — what `newton_fin`
    /// snapshots there and what the next slice restores into.
    pub capture_sets: Vec<SetId>,
    /// Analyzer plan; probe addresses carry their slice index.
    pub plan: QueryPlan,
}

impl SlicedCompilation {
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Total module rules across slices.
    pub fn total_module_rules(&self) -> usize {
        self.slices.iter().map(RuleSet::module_rule_count).sum()
    }
}

/// Compile `query` for execution across switches offering
/// `stages_per_switch` module stages each.
///
/// The fully-optimized (vertical) composition's module sequence is chunked
/// *in order*; each chunk re-packs locally with the same greedy packer, so
/// a chunk still multiplexes up to four modules per stage. Chunking in
/// spec order guarantees at most one metadata set's (hash, state) pair is
/// live at any boundary — each produced value is consumed by the next few
/// specs — so the snapshot's single-set payload suffices. The set captured
/// at a boundary is the set of the chunk's last module; the next slice
/// restores into the same set.
pub fn compile_sliced(
    query: &Query,
    id: QueryId,
    config: &CompilerConfig,
    stages_per_switch: usize,
) -> SlicedCompilation {
    assert!(stages_per_switch >= 2, "slices need room for a restored 𝕂 plus one module");
    let decomp = decompose_query(query, config);
    let composition = compose(query, &decomp, OptLevel::full());

    // Chunk the spec sequence, restoring 𝕂 at slice heads where a key
    // consumer would otherwise see stale operation keys.
    let mut slices: Vec<Vec<ModuleSpec>> = Vec::new();
    let mut current: Vec<ModuleSpec> = Vec::new();
    let mut last_k: std::collections::HashMap<(u8, SetId), ModuleSpec> =
        std::collections::HashMap::new();
    let mut keys_fresh: std::collections::HashSet<(u8, SetId)> = std::collections::HashSet::new();

    let packed_stages = |specs: &[ModuleSpec]| -> usize {
        crate::compose::pack_stages(specs).into_iter().max().map_or(0, |s| s + 1)
    };

    for spec in &composition.kept {
        // Candidate additions for this step: a restored 𝕂 (if needed) then
        // the spec itself.
        let mut additions: Vec<ModuleSpec> = Vec::new();
        // ℍ consumes the operation keys; a reporting ℝ mirrors them in its
        // report. Either way the keys must have been selected within this
        // slice — they are not part of the snapshot.
        let needs_keys = matches!(
            spec.role,
            ModuleRole::HashKeys { .. }
                | ModuleRole::HashDirect { .. }
                | ModuleRole::Threshold { report: true, .. }
        );
        let key = (spec.branch, spec.set);
        if needs_keys && !keys_fresh.contains(&key) {
            if let Some(k) = last_k.get(&key) {
                additions.push(k.clone());
            }
        }
        additions.push(spec.clone());

        // Close the chunk if the additions overflow the stage budget.
        let mut trial = current.clone();
        trial.extend(additions.iter().cloned());
        if !current.is_empty() && packed_stages(&trial) > stages_per_switch {
            slices.push(std::mem::take(&mut current));
            keys_fresh.clear();
            // Recompute the restoration need for the fresh chunk.
            additions.clear();
            if needs_keys {
                if let Some(k) = last_k.get(&key) {
                    additions.push(k.clone());
                }
            }
            additions.push(spec.clone());
        }
        for a in additions {
            if a.kind == ModuleKind::KeySelection {
                last_k.insert((a.branch, a.set), a.clone());
                keys_fresh.insert((a.branch, a.set));
            }
            current.push(a);
        }
    }
    if !current.is_empty() {
        slices.push(current);
    }

    // Emit per-slice rule sets with locally packed stages, and record the
    // boundary capture sets.
    let mut out_slices = Vec::with_capacity(slices.len());
    let mut slice_stage_counts = Vec::with_capacity(slices.len());
    let mut capture_sets = Vec::with_capacity(slices.len());
    let mut plan: Option<QueryPlan> = None;
    let mut packed: Vec<Vec<usize>> = Vec::with_capacity(slices.len());
    for (si, slice_specs) in slices.iter().enumerate() {
        let stage_of = crate::compose::pack_stages(slice_specs);
        let stages = stage_of.iter().copied().max().map_or(0, |s| s + 1);
        let comp = crate::compose::Composition {
            kept: slice_specs.clone(),
            stage_of: stage_of.clone(),
            absorbed_front_filters: composition.absorbed_front_filters.clone(),
            opt: OptLevel::full(),
        };
        let (mut rules, slice_plan) = generate_rules(query, id, &decomp, &comp, config);
        if si != 0 {
            rules.init.clear(); // only the first slice dispatches
        }
        slice_stage_counts.push(stages);
        capture_sets.push(slice_specs.last().map(|m| m.set).unwrap_or(SetId::Set1));
        out_slices.push(rules);
        packed.push(stage_of);
        if plan.is_none() {
            plan = Some(slice_plan);
        }
    }

    // Rebuild the probes over the *chunked* layout: an ℍ→𝕊 row pair may
    // span a slice boundary, so pairing must walk all slices with global
    // state rather than per slice.
    let mut plan = plan.expect("at least one slice");
    for (b, branch) in query.branches.iter().enumerate() {
        let Some((prim_idx, keys)) =
            branch.primitives.iter().enumerate().rev().find_map(|(p, prim)| match prim {
                newton_query::ast::Primitive::Reduce { keys, .. } => Some((p, keys.clone())),
                _ => None,
            })
        else {
            continue;
        };
        let key_field = keys.first().map(|e| e.field).unwrap_or(plan.branches[b].report_field);
        let key_mask = newton_query::ast::keys_mask(&keys);
        let mut probes = Vec::new();
        let mut pending: Option<(u64, u32)> = None;
        for (si, slice_specs) in slices.iter().enumerate() {
            for (i, spec) in slice_specs.iter().enumerate() {
                if spec.branch != b as u8 || spec.prim_idx != prim_idx {
                    continue;
                }
                match &spec.role {
                    ModuleRole::HashKeys { seed, range } => pending = Some((*seed, *range)),
                    ModuleRole::StateAdd { .. } | ModuleRole::StateMax { .. } => {
                        if let Some((seed, range)) = pending.take() {
                            probes.push(ProbeSpec {
                                slice: si,
                                s_addr: newton_dataplane::ModuleAddr {
                                    stage: packed[si][i],
                                    slot: ModuleKind::StateBank.depth(),
                                },
                                seed,
                                range,
                                offset: config.register_offset,
                                key_field,
                                key_mask,
                            });
                        }
                    }
                    _ => {}
                }
            }
        }
        plan.branches[b].probes = probes;
    }

    SlicedCompilation {
        query_name: query.name.clone(),
        id,
        slices: out_slices,
        slice_stage_counts,
        capture_sets,
        plan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newton_query::catalog;

    fn cfg() -> CompilerConfig {
        CompilerConfig::default()
    }

    #[test]
    fn every_query_slices_to_budget() {
        for q in catalog::all_queries() {
            for budget in [3usize, 5, 10] {
                let s = compile_sliced(&q, 1, &cfg(), budget);
                for (i, count) in s.slice_stage_counts.iter().enumerate() {
                    assert!(
                        *count <= budget,
                        "{}: slice {i} has {count} stages > budget {budget}",
                        q.name
                    );
                }
                assert!(s.slices[0].init.len() >= q.branches.len());
                for later in &s.slices[1..] {
                    assert!(later.init.is_empty(), "{}: init beyond slice 0", q.name);
                }
            }
        }
    }

    #[test]
    fn key_consumers_always_have_keys_in_slice() {
        // Within every slice, any ℍ of a branch must be preceded (within
        // the same slice) by a 𝕂 of that branch — the restore invariant.
        for q in catalog::all_queries() {
            let s = compile_sliced(&q, 1, &cfg(), 4);
            for (i, slice) in s.slices.iter().enumerate() {
                for (h_addr, h) in &slice.h {
                    let has_k = slice
                        .k
                        .iter()
                        .any(|(ka, kr)| kr.branch == h.branch && ka.stage < h_addr.stage);
                    assert!(has_k, "{}: slice {i} ℍ at {h_addr} lacks a preceding 𝕂", q.name);
                }
            }
        }
    }

    #[test]
    fn probes_are_slice_tagged() {
        let s = compile_sliced(&catalog::q1_new_tcp(), 1, &cfg(), 3);
        let probes = &s.plan.branches[0].probes;
        assert_eq!(probes.len(), 2, "Q1's 2-row CM");
        // At a 3-stage budget the rows land in different slices.
        assert!(probes.iter().any(|p| p.slice > 0), "probes should span slices: {probes:?}");
    }

    #[test]
    fn rules_partition_across_slices() {
        let q = catalog::q4_port_scan();
        let whole = crate::compile(&q, 1, &cfg());
        let sliced = compile_sliced(&q, 1, &cfg(), 5);
        // Restored 𝕂s make the sliced total ≥ the horizontal total, which
        // itself is ≥ the fully-optimized total.
        assert!(sliced.total_module_rules() >= whole.rules.module_rule_count());
        assert!(sliced.slice_count() >= 3);
    }
}
