//! Compilation outputs: the analyzer plan and per-opt-level statistics.

use crate::compose::{compose, Composition, OptLevel};
use crate::decompose::{decompose_query, Decomposition};
use crate::CompilerConfig;
use newton_dataplane::{ModuleAddr, QueryId, RuleSet};
use newton_packet::Field;
use newton_query::ast::{CmpOp, MergeOp};
use newton_query::Query;

/// Work the software analyzer must finish at epoch end — the query parts
/// the data plane cannot decide (§7: non-monotone thresholds, cross-packet
/// merges).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnalyzerTask {
    /// Apply a non-monotone trailing threshold to a branch's final counts.
    EpochThreshold { branch: u8, cmp: CmpOp, value: u64 },
    /// For each candidate key reported by the driver branch, probe
    /// `branch`'s state and require `probe cmp value`.
    ProbeCheck { branch: u8, cmp: CmpOp, value: u64 },
    /// Cross-packet `Combine` merge: fold the probe of `branch` into the
    /// driver count with `op`, then require `folded cmp value`.
    ProbeMerge { branch: u8, op: MergeOp, cmp: CmpOp, value: u64 },
}

/// How the analyzer can read one branch's aggregate for an arbitrary key:
/// re-hash the key exactly as the installed ℍ rule does, then read the 𝕊
/// register (minimum across rows for multi-row sketches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeSpec {
    /// Which CQE slice the 𝕊 instance lives in (0 for unsliced queries);
    /// the register reader maps (slice, address) to a physical switch.
    pub slice: usize,
    /// Address of the 𝕊 instance holding the row (within its slice).
    pub s_addr: ModuleAddr,
    /// The row's hash parameters (mirrors the installed `HRule`).
    pub seed: u64,
    pub range: u32,
    pub offset: u32,
    /// The key field of this branch's aggregate (where to place the
    /// candidate value before hashing).
    pub key_field: Field,
    /// The branch's operation-key mask.
    pub key_mask: u128,
}

/// Per-branch metadata the analyzer needs to decode reports and probe
/// state.
#[derive(Debug, Clone)]
pub struct BranchPlan {
    /// The field carrying the report key (e.g. `DstIp` for victims).
    pub report_field: Field,
    /// State probes, one per sketch row of the branch's last reduce.
    pub probes: Vec<ProbeSpec>,
}

/// The complete analyzer-facing plan of a compiled query.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    pub branches: Vec<BranchPlan>,
    /// The branch whose reports seed candidate keys.
    pub driver: u8,
    /// Epoch-end work.
    pub tasks: Vec<AnalyzerTask>,
    /// Whether the merge completed on the data plane (no analyzer merge).
    pub dp_merged: bool,
    /// Epoch length in milliseconds.
    pub epoch_ms: u64,
}

/// Everything `compile` produces.
#[derive(Debug, Clone)]
pub struct Compilation {
    pub query_name: String,
    pub id: QueryId,
    /// Installable rules (all optimizations applied).
    pub rules: RuleSet,
    /// Analyzer plan.
    pub plan: QueryPlan,
    /// Fig. 15 statistics.
    pub stats: CompileStats,
    /// The composed module/stage structure behind `rules`.
    pub composition: Composition,
}

/// Modules/stages at each optimization level (Fig. 15), plus the reduction
/// ratios of Fig. 7.
#[derive(Debug, Clone)]
pub struct CompileStats {
    pub query_name: String,
    pub primitives: usize,
    /// (label, modules, stages) per cumulative level, Fig. 15 order.
    pub levels: Vec<(&'static str, usize, usize)>,
}

impl CompileStats {
    /// Compose the query at all four levels.
    pub fn collect(query: &Query, decomp: &Decomposition, _config: &CompilerConfig) -> Self {
        let levels = OptLevel::ladder()
            .into_iter()
            .map(|(label, opt)| {
                let c = compose(query, decomp, opt);
                (label, c.modules(), c.stages())
            })
            .collect();
        CompileStats { query_name: query.name.clone(), primitives: query.primitive_count(), levels }
    }

    pub fn naive_modules(&self) -> usize {
        self.levels[0].1
    }

    pub fn naive_stages(&self) -> usize {
        self.levels[0].2
    }

    pub fn final_modules(&self) -> usize {
        self.levels.last().expect("levels").1
    }

    pub fn final_stages(&self) -> usize {
        self.levels.last().expect("levels").2
    }

    /// Fraction of modules removed by optimization (Fig. 7).
    pub fn module_reduction(&self) -> f64 {
        1.0 - self.final_modules() as f64 / self.naive_modules() as f64
    }

    /// Fraction of stages removed by optimization (Fig. 7).
    pub fn stage_reduction(&self) -> f64 {
        1.0 - self.final_stages() as f64 / self.naive_stages() as f64
    }
}

/// Convenience: collect stats directly from a query.
pub fn stats_for(query: &Query, config: &CompilerConfig) -> CompileStats {
    CompileStats::collect(query, &decompose_query(query, config), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use newton_query::catalog;

    #[test]
    fn levels_are_monotone_nonincreasing() {
        let cfg = CompilerConfig::default();
        for q in catalog::all_queries() {
            let s = stats_for(&q, &cfg);
            assert_eq!(s.levels.len(), 4);
            for w in s.levels.windows(2) {
                assert!(w[1].1 <= w[0].1, "{}: modules increased {:?}", q.name, s.levels);
                assert!(w[1].2 <= w[0].2, "{}: stages increased {:?}", q.name, s.levels);
            }
        }
    }

    #[test]
    fn reductions_are_meaningful() {
        let cfg = CompilerConfig::default();
        let stats: Vec<CompileStats> =
            catalog::all_queries().iter().map(|q| stats_for(q, &cfg)).collect();
        let min_mod = stats.iter().map(CompileStats::module_reduction).fold(f64::MAX, f64::min);
        let min_stage = stats.iter().map(CompileStats::stage_reduction).fold(f64::MAX, f64::min);
        // The paper: ≥ 42.4 % module and ≥ 69.7 % stage reduction.
        assert!(min_mod > 0.35, "worst module reduction {min_mod:.2}");
        assert!(min_stage > 0.55, "worst stage reduction {min_stage:.2}");
    }
}
