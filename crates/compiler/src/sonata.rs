//! Sonata cost estimator (the Fig. 15 comparison baseline).
//!
//! Sonata compiles each query into a dedicated P4 program: per primitive it
//! emits one or two logical match-action tables plus register arrays, and
//! dependent tables occupy consecutive stages (we follow the estimation
//! approach of Jose et al., "Compiling packet programs to reconfigurable
//! switches", which the paper also cites for its stage estimates).
//!
//! Two properties matter for the reproduction:
//! * Sonata's *table* count is comparable to Newton's unoptimized module
//!   count (both ∝ primitives), and
//! * Sonata's *stage* count exceeds optimized Newton (no stage sharing),
//!   and updating any of it requires recompiling and reloading the P4
//!   program (the Fig. 10 outage; see `newton-baselines`).

use newton_query::ast::{Primitive, Query};

/// Estimated Sonata cost of one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SonataCost {
    /// Logical match-action tables.
    pub tables: usize,
    /// Estimated physical stages (dependent tables serialize; a stage fits
    /// at most one stateful table but can absorb one stateless companion).
    pub stages: usize,
}

/// Logical tables per primitive in Sonata's compilation model:
/// stateless primitives need one table; stateful ones need a hash/index
/// table plus a register-update table.
fn tables_of(p: &Primitive) -> usize {
    match p {
        Primitive::Filter(preds) => preds.len().max(1),
        Primitive::Map(_) => 1,
        Primitive::Distinct(_) => 2,
        Primitive::Reduce { .. } => 2,
        Primitive::ResultFilter { .. } => 1,
    }
}

/// Stages per primitive: stateless primitives take one stage; stateful
/// ones serialize three dependent steps (hash computation, register
/// read-modify-write, count/threshold handling) across stages.
fn stages_of(p: &Primitive) -> usize {
    match p {
        Primitive::Distinct(_) | Primitive::Reduce { .. } => 3,
        other => tables_of(other),
    }
}

/// Estimate Sonata's cost for a query.
pub fn estimate(query: &Query) -> SonataCost {
    let mut tables = 0usize;
    let mut stages = 0usize;
    for branch in &query.branches {
        for p in &branch.primitives {
            tables += tables_of(p);
            stages += stages_of(p);
        }
    }
    if query.merge.is_some() {
        // The join/zip logic adds tables and serialized stages.
        tables += 2;
        stages += 3;
    }
    // Fixed per-query overhead: Sonata's compiled programs carry their own
    // traffic-selection table and report/mirror formatting logic (Newton
    // amortizes both into the shared `newton_init` and ℝ modules).
    tables += 2;
    stages += 2;
    SonataCost { tables, stages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompilerConfig};
    use newton_query::catalog;

    #[test]
    fn sonata_cost_scales_with_primitives() {
        let q1 = estimate(&catalog::q1_new_tcp());
        let q6 = estimate(&catalog::q6_syn_flood());
        assert!(q6.tables > q1.tables);
        assert!(q1.tables >= catalog::q1_new_tcp().primitive_count());
    }

    #[test]
    fn optimized_newton_uses_fewer_stages_than_sonata() {
        // Fig. 15: "when applying the query compilation optimization,
        // Newton even has lower stage consumption than Sonata."
        let cfg = CompilerConfig::default();
        for q in catalog::all_queries() {
            let newton = compile(&q, 1, &cfg).composition.stages();
            let sonata = estimate(&q).stages;
            assert!(newton <= sonata, "{}: Newton {newton} stages vs Sonata {sonata}", q.name);
        }
    }
}
