//! Incremental compilation: a cache over Algorithm-1 composition and
//! Opt.1–3 rule generation, keyed on query *structure* + target config.
//!
//! Under churn the controller compiles the same handful of intent shapes
//! over and over — drill-down variants, renamed re-submissions, the same
//! catalog query re-installed after a remove. Composition and rule
//! generation are pure functions of `(query structure, CompilerConfig,
//! stage budget)`; only the [`QueryId`] stamped into the emitted rules
//! differs between generations. The cache therefore stores one canonical
//! compilation per key and **rebinds** the query id (and display name) on
//! every fetch — a linear pass over the rule vectors, orders of magnitude
//! cheaper than re-running decomposition, composition and rule generation.
//!
//! The key deliberately excludes `Query::name`: renaming an intent (the
//! common "q1 → q1_tight" drill-down resubmission) is a cache hit.
//! Everything else that influences the emitted artifacts is in the key:
//! branches/merge/epoch (structure) and every [`CompilerConfig`] field
//! (register slice geometry, sketch shape, hash seeds).

use crate::plan::Compilation;
use crate::slicing::{compile_sliced, SlicedCompilation};
use crate::CompilerConfig;
use newton_dataplane::{QueryId, RuleSet};
use newton_query::Query;
use std::collections::HashMap;

/// Cache key: the query structure (name excluded) plus the full compiler
/// configuration. `Query` intentionally does not implement `Hash`, so the
/// structural part is its canonical `Debug` rendering — stable, total, and
/// collision-free (it spells out every branch, primitive and merge).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    structure: String,
    registers_per_array: u32,
    register_offset: u32,
    bf_hashes: usize,
    cm_depth: usize,
    seed: u64,
}

impl CacheKey {
    fn new(query: &Query, config: &CompilerConfig) -> Self {
        CacheKey {
            structure: format!("{:?}|{:?}|{}", query.branches, query.merge, query.epoch_ms),
            registers_per_array: config.registers_per_array,
            register_offset: config.register_offset,
            bf_hashes: config.bf_hashes,
            cm_depth: config.cm_depth,
            seed: config.seed,
        }
    }
}

/// Hit/miss counters of one [`CompileCache`], for churn-bench reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when never used).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The compilation cache. One per controller; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct CompileCache {
    whole: HashMap<CacheKey, Compilation>,
    sliced: HashMap<(CacheKey, usize), SlicedCompilation>,
    stats: CacheStats,
}

fn rebind_ruleset(rules: &mut RuleSet, id: QueryId) {
    for r in &mut rules.init {
        r.query = id;
    }
    for (_, r) in &mut rules.k {
        r.query = id;
    }
    for (_, r) in &mut rules.h {
        r.query = id;
    }
    for (_, r) in &mut rules.s {
        r.query = id;
    }
    for (_, r) in &mut rules.r {
        r.query = id;
    }
}

impl CompileCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached [`crate::compile`]: identical output, reused composition.
    pub fn compile(&mut self, query: &Query, id: QueryId, config: &CompilerConfig) -> Compilation {
        let key = CacheKey::new(query, config);
        let mut out = match self.whole.get(&key) {
            Some(c) => {
                self.stats.hits += 1;
                c.clone()
            }
            None => {
                self.stats.misses += 1;
                let c = crate::compile(query, id, config);
                self.whole.insert(key, c.clone());
                c
            }
        };
        out.id = id;
        out.query_name = query.name.clone();
        out.stats.query_name = query.name.clone();
        rebind_ruleset(&mut out.rules, id);
        out
    }

    /// Cached [`compile_sliced`]: identical output, reused composition and
    /// chunking. The stage budget joins the key — the same structure slices
    /// differently on 4-stage and 12-stage switches.
    pub fn compile_sliced(
        &mut self,
        query: &Query,
        id: QueryId,
        config: &CompilerConfig,
        stages_per_switch: usize,
    ) -> SlicedCompilation {
        let key = (CacheKey::new(query, config), stages_per_switch);
        let mut out = match self.sliced.get(&key) {
            Some(c) => {
                self.stats.hits += 1;
                c.clone()
            }
            None => {
                self.stats.misses += 1;
                let c = compile_sliced(query, id, config, stages_per_switch);
                self.sliced.insert(key, c.clone());
                c
            }
        };
        out.id = id;
        out.query_name = query.name.clone();
        for slice in &mut out.slices {
            rebind_ruleset(slice, id);
        }
        out
    }

    /// Hit/miss counters since construction (or the last [`Self::clear`]).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Cached compilations currently held.
    pub fn len(&self) -> usize {
        self.whole.len() + self.sliced.len()
    }

    pub fn is_empty(&self) -> bool {
        self.whole.is_empty() && self.sliced.is_empty()
    }

    /// Drop every cached compilation and reset the counters.
    pub fn clear(&mut self) {
        self.whole.clear();
        self.sliced.clear();
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use newton_query::catalog;

    fn cfg() -> CompilerConfig {
        CompilerConfig::default()
    }

    #[test]
    fn fetch_equals_fresh_compile_with_rebound_id() {
        let mut cache = CompileCache::new();
        for q in catalog::all_queries() {
            let warm = cache.compile(&q, 7, &cfg());
            let fresh = crate::compile(&q, 7, &cfg());
            assert_eq!(warm.rules, fresh.rules, "{}: warm-miss compile diverged", q.name);

            // Second fetch under a different id: every rule rebound.
            let hit = cache.compile(&q, 42, &cfg());
            let direct = crate::compile(&q, 42, &cfg());
            assert_eq!(hit.rules, direct.rules, "{}: rebound rules diverged", q.name);
            assert_eq!(hit.id, 42);
            assert_eq!(format!("{:?}", hit.plan), format!("{:?}", direct.plan));
        }
    }

    #[test]
    fn renamed_query_is_a_hit_but_config_change_is_a_miss() {
        let mut cache = CompileCache::new();
        let q = catalog::q1_new_tcp();
        cache.compile(&q, 1, &cfg());
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 1 });

        let mut renamed = q.clone();
        renamed.name = "q1_tight".into();
        let c = cache.compile(&renamed, 2, &cfg());
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(c.query_name, "q1_tight", "display name rebinds on fetch");

        let other = CompilerConfig { register_offset: 512, ..cfg() };
        cache.compile(&q, 3, &other);
        assert_eq!(cache.stats().misses, 2, "register slice geometry is part of the key");
    }

    #[test]
    fn sliced_fetch_matches_fresh_and_keys_on_budget() {
        let mut cache = CompileCache::new();
        let q = catalog::q4_port_scan();
        let warm = cache.compile_sliced(&q, 3, &cfg(), 4);
        let fresh = compile_sliced(&q, 3, &cfg(), 4);
        assert_eq!(warm.slices, fresh.slices);

        let hit = cache.compile_sliced(&q, 9, &cfg(), 4);
        let direct = compile_sliced(&q, 9, &cfg(), 4);
        assert_eq!(hit.slices, direct.slices, "rebound slices diverged");
        assert_eq!(hit.slice_stage_counts, direct.slice_stage_counts);
        assert_eq!(hit.capture_sets, direct.capture_sets);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });

        cache.compile_sliced(&q, 10, &cfg(), 6);
        assert_eq!(cache.stats().misses, 2, "stage budget is part of the key");
    }

    #[test]
    fn threshold_change_is_a_structural_miss() {
        // A retuned threshold changes the emitted ℝ rules, so it must not
        // collide with the original structure's cache entry.
        let mut cache = CompileCache::new();
        let q = catalog::q1_new_tcp();
        let a = cache.compile(&q, 1, &cfg());
        let mut tighter = q.clone();
        for b in &mut tighter.branches {
            for p in &mut b.primitives {
                if let newton_query::ast::Primitive::ResultFilter { value, .. } = p {
                    *value += 5;
                }
            }
        }
        let b = cache.compile(&tighter, 1, &cfg());
        assert_eq!(cache.stats().misses, 2);
        assert_ne!(a.rules, b.rules, "different thresholds compile differently");
    }
}
