//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the *small* `rand` API subset it actually uses: [`Rng`] with
//! `gen`/`gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator is SplitMix64 — statistically fine for
//! simulation workloads, deterministic per seed, and *not* cryptographic.
//! Import paths match `rand 0.8` so swapping the real crate back in is a
//! one-line Cargo change.

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of uniformly random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A uniform value in [0, 1).
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 high-quality bits → the standard mantissa trick.
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types producible directly by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Types samplable uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128;
                let span = if inclusive { span + 1 } else { span };
                assert!(span > 0, "gen_range called with an empty range");
                let r = <u128 as Standard>::sample(rng) % span;
                ((lo as $wide).wrapping_add(r as $wide)) as $t
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize, u128 => u128,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _incl: bool) -> Self {
        lo + unit_f64(rng) * (hi - lo)
    }
}

/// Both `a..b` and `a..=b` work with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// The user-facing sampling interface (auto-implemented for every core rng).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: one 64-bit word of state, full-period, passes BigCrush
    /// for this workspace's simulation purposes.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    /// Same generator — the distinction only matters for the real crate.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u16 = rng.gen_range(1024..u16::MAX);
            assert!((1024..u16::MAX).contains(&x));
            let y = rng.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&y));
            let z: i32 = rng.gen_range(64..512);
            assert!((64..512).contains(&z));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn values_spread_over_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let distinct: std::collections::HashSet<u32> =
            (0..1000).map(|_| rng.gen_range(0u32..1 << 20)).collect();
        assert!(distinct.len() > 900, "poor spread: {}", distinct.len());
    }
}
