//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the property-testing API subset its tests use: the [`proptest!`] macro,
//! [`Strategy`](strategy::Strategy) with `prop_map`, range/tuple/`Just`/[`prop_oneof!`]
//! strategies, `prop::collection::{vec, hash_set}`, `any::<T>()`, and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! per-test seed (derived from the test name) so failures reproduce; there
//! is **no shrinking** — a failing case reports its exact inputs instead.
//! Import paths match `proptest 1.x` so swapping the real crate back in is
//! a one-line Cargo change.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! `prop::collection` — sized collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec<S::Value>` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.below_range(self.size.start, self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet`s with a cardinality drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `HashSet<S::Value>` with cardinality in `size` (best effort: tiny
    /// value domains may cap below the requested minimum).
    pub fn hash_set<S: Strategy>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.below_range(self.size.start, self.size.end);
            let mut out = HashSet::with_capacity(target);
            // Bounded retries: duplicate draws must not hang on small domains.
            let mut budget = target * 20 + 20;
            while out.len() < target && budget > 0 {
                out.insert(self.element.generate(rng));
                budget -= 1;
            }
            out
        }
    }
}

pub mod prelude {
    //! Everything a test file needs, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        pub use crate::collection;
    }
}

/// Run each `#[test] fn name(arg in strategy, ...) { body }` against
/// `Config::cases` generated inputs. No shrinking: failures print the case
/// seed and the exact generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let Err(e) = outcome {
                    if e.is_rejection() {
                        continue; // prop_assume! precondition unmet: skip.
                    }
                    panic!(
                        "proptest {} failed at case {case}/{}:\n{e}\ninputs:\n{inputs}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Uniform choice between same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strat),+])
    };
}

/// Like `assert!`, but fails the property (with its inputs) instead of
/// panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!`, but fails the property instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", lhs, rhs),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {:?} == {:?}: {}",
                    lhs,
                    rhs,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Skip cases whose generated inputs don't satisfy a precondition. Unlike
/// real proptest there is no global rejection cap — skipped cases simply
/// don't count.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_ne!`, but fails the property instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                lhs, rhs
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic_per_case() {
        let s = (0u32..100, any::<bool>());
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn union_and_map_compose() {
        let s = prop_oneof![Just(1u32), Just(2), Just(3)].prop_map(|x| x * 10);
        let mut rng = crate::test_runner::TestRng::for_case("u", 0);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!([10, 20, 30].contains(&v));
        }
    }

    #[test]
    fn collections_respect_size_bounds() {
        let s = crate::collection::vec(any::<u8>(), 3..7);
        let mut rng = crate::test_runner::TestRng::for_case("v", 1);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
        let hs = crate::collection::hash_set(any::<u64>(), 5..9);
        for _ in 0..20 {
            let set = hs.generate(&mut rng);
            assert!((5..9).contains(&set.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// The macro itself: ranges stay in bounds, asserts work.
        #[test]
        fn macro_end_to_end(x in 1u32..50, flip in any::<bool>(), v in prop::collection::vec(0u8..4, 0..10)) {
            prop_assert!((1..50).contains(&x), "x out of range: {x}");
            let negated = !flip;
            prop_assert_eq!(flip, !negated);
            for b in &v {
                prop_assert!(*b < 4);
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(seed in 0u64..1000) {
            prop_assert!(seed < 1000);
        }
    }

    #[test]
    #[should_panic(expected = "inputs")]
    fn failing_case_reports_inputs() {
        // No #[test] meta: the runner fn is invoked directly (attribute
        // collection can't see items nested inside a function).
        proptest! {
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "forced failure");
            }
        }
        inner();
    }
}
