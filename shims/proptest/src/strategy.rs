//! Value-generation strategies (the `proptest::strategy` subset).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// Canonical strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let r = (rng.next_u64() as u128
                    | ((rng.next_u64() as u128) << 64)) % span;
                (self.start as u128).wrapping_add(r) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                let r = (rng.next_u64() as u128
                    | ((rng.next_u64() as u128) << 64)) % span;
                (lo as u128).wrapping_add(r) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
