//! Case execution plumbing: config, rng, and the test-case error type.

/// How many cases each property runs (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// A failed or rejected property case. Produced by the `prop_assert*` /
/// `prop_assume!` macros; the `proptest!` runner panics on failures (with
/// the generated inputs attached) and silently skips rejections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    reason: String,
    rejected: bool,
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError { reason: reason.into(), rejected: false }
    }

    /// A case whose inputs don't satisfy a `prop_assume!` precondition;
    /// the runner skips it rather than failing the property.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError { reason: reason.into(), rejected: true }
    }

    /// Whether this case was rejected (vs failed).
    pub fn is_rejection(&self) -> bool {
        self.rejected
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.reason.fmt(f)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-case generator: seeded from (test name, case index)
/// so every failure reproduces by rerunning the test.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    /// SplitMix64 step.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform in `[lo, hi)`.
    pub fn below_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty size range");
        lo + self.below((hi - lo) as u64) as usize
    }
}
